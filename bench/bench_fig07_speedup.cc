/**
 * @file
 * Fig. 7 reproduction: speedup of ANT, OliVe and BitMoD over the
 * baseline FP16 accelerator on discriminative (256:1) and generative
 * (256:256) tasks at batch 1, under iso-compute area, for both the
 * lossless (INT6) and lossy (4-/3-bit) BitMoD configurations.
 *
 * --measured re-runs every deployment in measurement-driven mode:
 * proxy layers are quantized + packed per model and the simulator
 * charges DRAM for the exact PackedMatrix image bytes and compute for
 * the term-skipping PE's effectual-term counts, then the
 * analytic-vs-measured deltas are reported.  Measured profiles are
 * memoized in a sweep-wide ProfileCache (one measurement per
 * (model, QuantConfig) instead of one per task and batch point).
 *
 * --batch-sweep extends the evaluation past the paper's batch-1
 * premise: decode is re-simulated on a short-context serving task at
 * batch 1..1024.  Every decode step still streams each packed weight
 * once — the batch rides the same fetch — so weight DRAM bytes stay
 * flat while compute and KV scale per sequence, and the sweep reports
 * the batch where decode flips from memory- to compute-bound per
 * model and BitMoD datatype.  --out emits the geomean speedups (and
 * the batch_speedup section) as BENCH_fig07.json for the CI perf
 * gate.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "accel/policy.hh"
#include "bench_util.hh"
#include "common/stats.hh"
#include "core/bitmod_api.hh"

using namespace bitmod;

namespace
{

/** Geomean speedups of the four non-baseline configurations. */
struct SpeedupSummary
{
    std::vector<double> ant, olive, ll, ly;

    double antGeo() const { return geoMean(ant); }
    double oliveGeo() const { return geoMean(olive); }
    double llGeo() const { return geoMean(ll); }
    double lyGeo() const { return geoMean(ly); }
};

/** DeployRequest for one sweep point (measured mode optional). */
DeployRequest
sweepRequest(const std::string &accel, const std::string &model,
             Workload workload, Policy policy, bool measured,
             ProfileCache *cache)
{
    DeployRequest r(accel, model);
    r.with(workload).with(policy);
    if (measured)
        r.withMeasured(cache);
    return r;
}

/** One full Fig. 7 sweep; appends rows to @p t when not null. */
SpeedupSummary
sweep(const std::vector<std::string> &models, bool measured,
      ProfileCache *cache, TextTable *t)
{
    SpeedupSummary s;
    for (const Workload workload :
         {Workload::Discriminative, Workload::Generative}) {
        const bool generative = workload == Workload::Generative;
        for (const auto &name : models) {
            // The FP16 baseline has nothing to measure; it always
            // runs analytically (as before the API redesign).
            const auto base = simulateDeployment(sweepRequest(
                "Baseline-FP16", name, workload, Policy::Lossless,
                false, nullptr));
            const auto ant = simulateDeployment(
                sweepRequest("ANT", name, workload, Policy::Lossy,
                             measured, cache));
            const auto olive = simulateDeployment(
                sweepRequest("OliVe", name, workload, Policy::Lossy,
                             measured, cache));
            const auto ll = simulateDeployment(
                sweepRequest("BitMoD", name, workload,
                             Policy::Lossless, measured, cache));
            const auto ly = simulateDeployment(
                sweepRequest("BitMoD", name, workload, Policy::Lossy,
                             measured, cache));

            s.ant.push_back(base.latencyMs() / ant.latencyMs());
            s.olive.push_back(base.latencyMs() / olive.latencyMs());
            s.ll.push_back(base.latencyMs() / ll.latencyMs());
            s.ly.push_back(base.latencyMs() / ly.latencyMs());

            if (t)
                t->addRow({generative ? "gen" : "disc", name,
                           TextTable::num(s.ant.back(), 2) + "x",
                           TextTable::num(s.olive.back(), 2) + "x",
                           TextTable::num(s.ll.back(), 2) + "x",
                           TextTable::num(s.ly.back(), 2) + "x"});
        }
        if (t)
            t->addSeparator();
    }
    return s;
}

/** The batched-decode sweep: per-batch BitMoD speedup + crossover. */
struct BatchSweepSummary
{
    /** The per-sequence task every batch point decodes. */
    TaskSpec task = TaskSpec::serving(1);
    std::vector<size_t> batches;
    /** Geomean decode speedup over the FP16 baseline, per batch. */
    std::vector<double> llSpeedup, lySpeedup;
    /** Geomean first compute-bound batch per datatype. */
    double llCrossover = 0.0, lyCrossover = 0.0;
    /** Censoring value for configs that never flip in the sweep. */
    double censoredAt = 0.0;
    /** Batch-N decode weight bytes equalled batch-1's everywhere. */
    bool amortizationOk = true;
};

/**
 * Batched-decode sweep on the short-context serving task: at each
 * batch size, decode the same per-sequence workload on the baseline
 * and on BitMoD (lossless INT6 / lossy FP3) and record the decode
 * speedup, the compute-vs-memory bound, and the crossover batch.
 */
BatchSweepSummary
batchSweep(const std::vector<std::string> &models, bool measured,
           ProfileCache *cache, TextTable *t)
{
    BatchSweepSummary s;
    s.batches = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024};

    std::vector<std::vector<double>> llPerBatch(s.batches.size());
    std::vector<std::vector<double>> lyPerBatch(s.batches.size());
    std::vector<double> llCross, lyCross;
    // A config that never flips within the sweep is censored at one
    // power of two past the last swept batch.
    s.censoredAt = static_cast<double>(s.batches.back()) * 2.0;
    const double censored = s.censoredAt;

    for (const auto &name : models) {
        double llFlip = censored, lyFlip = censored;
        double llWeightBytes1 = 0.0, lyWeightBytes1 = 0.0;
        for (size_t bi = 0; bi < s.batches.size(); ++bi) {
            // Workload::Serving resolves to TaskSpec::serving(batch)
            // — the one source of the serving task shape.
            const auto point = [&](const std::string &accel,
                                   Policy policy, bool meas) {
                return simulateDeployment(
                    sweepRequest(accel, name, Workload::Serving,
                                 policy, meas, cache)
                        .withBatch(s.batches[bi]));
            };
            const auto base =
                point("Baseline-FP16", Policy::Lossless, false);
            const auto ll =
                point("BitMoD", Policy::Lossless, measured);
            const auto ly = point("BitMoD", Policy::Lossy, measured);

            // Weight-traffic amortization: the batch rides the same
            // per-step weight fetch, byte for byte.
            if (bi == 0) {
                llWeightBytes1 = ll.report.traffic.decode.weightBytes;
                lyWeightBytes1 = ly.report.traffic.decode.weightBytes;
            } else if (ll.report.traffic.decode.weightBytes !=
                           llWeightBytes1 ||
                       ly.report.traffic.decode.weightBytes !=
                           lyWeightBytes1) {
                s.amortizationOk = false;
            }

            const auto bound = [](const RunReport &r) {
                return r.decodeComputeCycles >= r.decodeMemCycles
                           ? "compute"
                           : "memory";
            };
            const auto &br = base.report;
            const auto &llr = ll.report;
            const auto &lyr = ly.report;
            if (llr.decodeComputeCycles >= llr.decodeMemCycles)
                llFlip = std::min(
                    llFlip, static_cast<double>(s.batches[bi]));
            if (lyr.decodeComputeCycles >= lyr.decodeMemCycles)
                lyFlip = std::min(
                    lyFlip, static_cast<double>(s.batches[bi]));

            llPerBatch[bi].push_back(br.decodeCycles /
                                     llr.decodeCycles);
            lyPerBatch[bi].push_back(br.decodeCycles /
                                     lyr.decodeCycles);
            if (t) {
                // Decoded tokens per megacycle: the throughput curve
                // that keeps climbing until the compute roof.
                const double toks = static_cast<double>(
                    s.batches[bi] * s.task.decodeSteps());
                t->addRow({name, std::to_string(s.batches[bi]),
                           TextTable::num(llr.decodeCycles / 1e6, 1),
                           bound(llr),
                           TextTable::num(llPerBatch[bi].back(), 2) +
                               "x",
                           TextTable::num(lyr.decodeCycles / 1e6, 1),
                           bound(lyr),
                           TextTable::num(lyPerBatch[bi].back(), 2) +
                               "x",
                           TextTable::num(
                               1e6 * toks / lyr.decodeCycles, 2)});
            }
        }
        llCross.push_back(llFlip);
        lyCross.push_back(lyFlip);
        if (t)
            t->addSeparator();
    }

    for (size_t bi = 0; bi < s.batches.size(); ++bi) {
        s.llSpeedup.push_back(geoMean(llPerBatch[bi]));
        s.lySpeedup.push_back(geoMean(lyPerBatch[bi]));
    }
    s.llCrossover = geoMean(llCross);
    s.lyCrossover = geoMean(lyCross);
    return s;
}

void
writeJson(const std::string &path, const SpeedupSummary &analytic,
          const SpeedupSummary *measured,
          const BatchSweepSummary *batch)
{
    FILE *f = benchutil::openBenchJson(path);
    std::fprintf(f, "{\n  \"bench\": \"fig07_speedup\",\n");
    std::fprintf(f,
                 "  \"fig07_analytic\": {\"ant_speedup\": %.4f, "
                 "\"olive_speedup\": %.4f, \"bitmod_ll_speedup\": %.4f, "
                 "\"bitmod_ly_speedup\": %.4f}%s\n",
                 analytic.antGeo(), analytic.oliveGeo(),
                 analytic.llGeo(), analytic.lyGeo(),
                 (measured || batch) ? "," : "");
    if (measured)
        std::fprintf(f,
                     "  \"fig07_measured\": {\"ant_speedup\": %.4f, "
                     "\"olive_speedup\": %.4f, "
                     "\"bitmod_ll_speedup\": %.4f, "
                     "\"bitmod_ly_speedup\": %.4f}%s\n",
                     measured->antGeo(), measured->oliveGeo(),
                     measured->llGeo(), measured->lyGeo(),
                     batch ? "," : "");
    if (batch) {
        std::fprintf(f, "  \"batch_speedup\": {\n");
        std::fprintf(f, "    \"task_in_tokens\": %zu, "
                        "\"task_out_tokens\": %zu,\n",
                     batch->task.inTokens, batch->task.outTokens);
        for (size_t bi = 0; bi < batch->batches.size(); ++bi)
            std::fprintf(f,
                         "    \"ll_b%zu_speedup\": %.4f, "
                         "\"ly_b%zu_speedup\": %.4f,\n",
                         batch->batches[bi], batch->llSpeedup[bi],
                         batch->batches[bi], batch->lySpeedup[bi]);
        std::fprintf(f,
                     "    \"ll_crossover_batch\": %.2f, "
                     "\"ly_crossover_batch\": %.2f,\n",
                     batch->llCrossover, batch->lyCrossover);
        std::fprintf(f, "    \"bit_identical\": %s\n  }\n",
                     batch->amortizationOk ? "true" : "false");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
}

} // namespace

int
main(int argc, char **argv)
{
    const auto args = benchutil::parseFigBenchArgs(argc, argv);
    const auto &models = args.models;

    TextTable t("Fig. 7 - speedup over the baseline FP16 accelerator"
                " (analytic model)");
    t.setHeader({"Task", "Model", "ANT", "OliVe", "BitMoD-LL(INT6)",
                 "BitMoD-LY(4b/3b)"});
    const SpeedupSummary analytic =
        sweep(models, false, nullptr, &t);

    t.addNote("geomean speedup vs baseline: ANT " +
              TextTable::num(analytic.antGeo(), 2) + "x | OliVe " +
              TextTable::num(analytic.oliveGeo(), 2) +
              "x | BitMoD-LL " + TextTable::num(analytic.llGeo(), 2) +
              "x | BitMoD-LY " + TextTable::num(analytic.lyGeo(), 2) +
              "x");
    {
        // Cross-accelerator ratios of the lossy configuration.
        std::vector<double> lyVsAnt, lyVsOlive;
        for (size_t i = 0; i < analytic.ly.size(); ++i) {
            lyVsAnt.push_back(analytic.ly[i] / analytic.ant[i]);
            lyVsOlive.push_back(analytic.ly[i] / analytic.olive[i]);
        }
        t.addNote("BitMoD-LY vs ANT: " +
                  TextTable::num(geoMean(lyVsAnt), 2) + "x, vs OliVe: " +
                  TextTable::num(geoMean(lyVsOlive), 2) +
                  "x (paper: 1.69x / 1.48x average)");
    }
    t.addNote("paper: lossless BitMoD 1.99x (disc) and 2.41x (gen) "
              "over the FP16 baseline");
    t.print();

    // One profile cache for every measured sweep in this run: each
    // (model, QuantConfig) pair is measured once and reused across
    // tasks and batch points, bit-identically.
    ProfileCache cache;

    SpeedupSummary measuredSummary;
    if (args.measured) {
        TextTable m("Fig. 7 - measured mode (packed-image DRAM bytes, "
                    "effectual-term compute)");
        m.setHeader({"Task", "Model", "ANT", "OliVe",
                     "BitMoD-LL(INT6)", "BitMoD-LY(4b/3b)"});
        measuredSummary = sweep(models, true, &cache, &m);
        const auto &delta = benchutil::pctDelta;
        m.addNote("geomean measured speedup: ANT " +
                  TextTable::num(measuredSummary.antGeo(), 2) +
                  "x | OliVe " +
                  TextTable::num(measuredSummary.oliveGeo(), 2) +
                  "x | BitMoD-LL " +
                  TextTable::num(measuredSummary.llGeo(), 2) +
                  "x | BitMoD-LY " +
                  TextTable::num(measuredSummary.lyGeo(), 2) + "x");
        m.addNote(
            "measured vs analytic delta: ANT " +
            delta(analytic.antGeo(), measuredSummary.antGeo()) +
            " | OliVe " +
            delta(analytic.oliveGeo(), measuredSummary.oliveGeo()) +
            " | BitMoD-LL " +
            delta(analytic.llGeo(), measuredSummary.llGeo()) +
            " | BitMoD-LY " +
            delta(analytic.lyGeo(), measuredSummary.lyGeo()));
        m.print();
        std::printf("[profile-cache] %zu measurements, %zu hits\n\n",
                    cache.misses(), cache.hits());
    }

    BatchSweepSummary batchSummary;
    if (args.batchSweep) {
        TextTable b(
            "Fig. 7 batch sweep - batched decode on the " +
            std::to_string(TaskSpec::serving(1).inTokens) + ":" +
            std::to_string(TaskSpec::serving(1).outTokens) +
            " serving task (weight stream shared across the batch)");
        b.setHeader({"Model", "Batch", "LL Mcyc", "LL bound", "LL x",
                     "LY Mcyc", "LY bound", "LY x", "LY tok/Mcyc"});
        batchSummary = batchSweep(models, args.measured, &cache, &b);
        b.addNote(
            "speedups are decode cycles vs the FP16 baseline at the "
            "same batch; 'compute' marks decodeComputeCycles >= "
            "decodeMemCycles");
        b.addNote(
            "geomean memory->compute crossover batch: BitMoD-LL " +
            TextTable::num(batchSummary.llCrossover, 1) +
            " | BitMoD-LY " +
            TextTable::num(batchSummary.lyCrossover, 1) +
            " (censored at " +
            TextTable::num(batchSummary.censoredAt, 0) +
            " when no flip in sweep)");
        b.addNote(std::string("decode weight bytes flat across "
                              "batches (amortization): ") +
                  (batchSummary.amortizationOk ? "OK" : "VIOLATED"));
        b.print();
        if (!batchSummary.amortizationOk) {
            std::fprintf(stderr, "batch sweep: weight-traffic "
                                 "amortization violated\n");
            return 2;
        }
    }

    if (!args.out.empty())
        writeJson(args.out, analytic,
                  args.measured ? &measuredSummary : nullptr,
                  args.batchSweep ? &batchSummary : nullptr);
    return 0;
}
