/**
 * @file
 * Fig. 7 reproduction: speedup of ANT, OliVe and BitMoD over the
 * baseline FP16 accelerator on discriminative (256:1) and generative
 * (256:256) tasks at batch 1, under iso-compute area, for both the
 * lossless (INT6) and lossy (4-/3-bit) BitMoD configurations.
 */

#include "accel/policy.hh"
#include "bench_util.hh"
#include "common/stats.hh"
#include "core/bitmod_api.hh"

using namespace bitmod;

int
main(int argc, char **argv)
{
    // --functional: before the analytic tables, validate the batched
    // bit-serial PE-column pipeline at a real model shape (full
    // hidden-dim GEMV vs the dequantized reference).
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--functional") {
            benchutil::functionalGemvCheck(
                benchutil::allModels().front());
        } else {
            std::fprintf(stderr, "usage: %s [--functional]\n",
                         argv[0]);
            return 1;
        }
    }
    TextTable t("Fig. 7 - speedup over the baseline FP16 accelerator");
    t.setHeader({"Task", "Model", "ANT", "OliVe", "BitMoD-LL(INT6)",
                 "BitMoD-LY(4b/3b)"});

    std::vector<double> geoAnt, geoOlive, geoLl, geoLy;
    std::vector<double> llVsBase, lyVsAnt, lyVsOlive;

    for (const bool generative : {false, true}) {
        for (const auto &name : benchutil::allModels()) {
            const auto base = simulateDeployment("Baseline-FP16", name,
                                                 generative, true);
            const auto ant =
                simulateDeployment("ANT", name, generative, false);
            const auto olive =
                simulateDeployment("OliVe", name, generative, false);
            const auto ll =
                simulateDeployment("BitMoD", name, generative, true);
            const auto ly =
                simulateDeployment("BitMoD", name, generative, false);

            const double sAnt = base.latencyMs() / ant.latencyMs();
            const double sOlive = base.latencyMs() / olive.latencyMs();
            const double sLl = base.latencyMs() / ll.latencyMs();
            const double sLy = base.latencyMs() / ly.latencyMs();
            geoAnt.push_back(sAnt);
            geoOlive.push_back(sOlive);
            geoLl.push_back(sLl);
            geoLy.push_back(sLy);
            llVsBase.push_back(sLl);
            lyVsAnt.push_back(ly.latencyMs() > 0
                                  ? ant.latencyMs() / ly.latencyMs()
                                  : 0.0);
            lyVsOlive.push_back(olive.latencyMs() / ly.latencyMs());

            t.addRow({generative ? "gen" : "disc", name,
                      TextTable::num(sAnt, 2) + "x",
                      TextTable::num(sOlive, 2) + "x",
                      TextTable::num(sLl, 2) + "x",
                      TextTable::num(sLy, 2) + "x"});
        }
        t.addSeparator();
    }

    t.addNote("geomean speedup vs baseline: ANT " +
              TextTable::num(geoMean(geoAnt), 2) + "x | OliVe " +
              TextTable::num(geoMean(geoOlive), 2) + "x | BitMoD-LL " +
              TextTable::num(geoMean(geoLl), 2) + "x | BitMoD-LY " +
              TextTable::num(geoMean(geoLy), 2) + "x");
    t.addNote("BitMoD-LY vs ANT: " + TextTable::num(geoMean(lyVsAnt), 2) +
              "x, vs OliVe: " + TextTable::num(geoMean(lyVsOlive), 2) +
              "x (paper: 1.69x / 1.48x average)");
    t.addNote("paper: lossless BitMoD 1.99x (disc) and 2.41x (gen) "
              "over the FP16 baseline");
    t.print();
    return 0;
}
