/**
 * @file
 * Fig. 3 reproduction: normalized per-group weight quantization error
 * when extending FP3 with different special values, across the six
 * LLMs.  Errors are normalized to basic FP3 (no special value); the
 * paper adopts +/-6 as the extra-asymmetry special value because it
 * minimizes the overall error.
 */

#include "bench_util.hh"

using namespace bitmod;

int
main()
{
    const SampleConfig cfg = rtnSweepConfig();
    benchutil::banner("fig03", cfg);

    const std::vector<double> candidates = {3, 4, 5, 6, 7, 8};

    TextTable t("Fig. 3 - normalized FP3+SV quantization error "
                "(1.0 = basic FP3)");
    std::vector<std::string> header = {"Special value"};
    for (const auto &name : benchutil::allModels())
        header.push_back(name);
    t.setHeader(header);

    // Precompute per-model contexts and FP3 baseline losses.
    std::vector<ModelEvalContext> ctxs;
    std::vector<double> baseLoss;
    for (const auto &name : benchutil::allModels()) {
        ctxs.emplace_back(llmByName(name), cfg);
        QuantConfig fp3;
        fp3.dtype = dtypes::fp3();
        baseLoss.push_back(ctxs.back().rtnLoss(fp3));
    }

    for (const double sv : candidates) {
        std::vector<std::string> cells = {"+/-" +
                                          TextTable::num(sv, 0)};
        for (size_t m = 0; m < ctxs.size(); ++m) {
            QuantConfig qc;
            qc.dtype = dtypes::bitmodFp3Custom({-sv, sv}, "FP3+SV");
            const double loss = ctxs[m].rtnLoss(qc);
            cells.push_back(TextTable::num(loss / baseLoss[m], 3));
        }
        t.addRow(cells);
    }
    t.addNote("paper Fig. 3: +/-6 achieves the lowest overall error "
              "(except OPT-1.3B), hence FP3-EA = +/-6");
    t.print();
    return 0;
}
