/**
 * @file
 * Hot-path throughput benchmark: measures weights/sec through the two
 * pipeline hot paths — adaptive-datatype quantizeMatrix (Algorithm 1)
 * and BitmodPe dot products — against faithful re-implementations of
 * the pre-optimization (seed) code: per-candidate EncodedGroup
 * allocation with a dequantized temporary for the MSE, and per-weight
 * Booth/NAF term recoding with a vector-of-vectors per group.
 *
 * Besides the speedups, the bench verifies that the optimized paths
 * are bit-identical to the reference: same QuantStats (mse / nmse /
 * svHistogram), same dequantized matrix, same dot-product values.
 * The packed_stream section additionally walks the batched strip GEMV
 * from the byte-exact PackedMatrix DRAM image (decoding codes from
 * the bit stream) against the float-pool walk and reports both
 * footprints, so the perf gate tracks throughput and memory together.
 * Results are also written as BENCH_hotpath.json so CI can track the
 * perf trajectory across PRs.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bitserial/termgen.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "common/simd.hh"
#include "common/table.hh"
#include "pe/pe_column.hh"
#include "quant/dtype.hh"
#include "quant/packing.hh"
#include "quant/quantizer.hh"
#include "tensor/generator.hh"

using namespace bitmod;

namespace
{

// ---------------------------------------------------------------------
// Reference (pre-optimization) implementations, kept verbatim from the
// seed code so the speedup is measured against a fixed baseline.
// ---------------------------------------------------------------------

/** Seed Grid::nearest: lower_bound plus a neighbour comparison. */
double
refNearest(const Grid &grid, double x)
{
    const auto &values = grid.values();
    const auto it = std::lower_bound(values.begin(), values.end(), x);
    if (it == values.begin())
        return values.front();
    if (it == values.end())
        return values.back();
    const size_t hi = static_cast<size_t>(it - values.begin());
    const size_t lo = hi - 1;
    const double dLo = x - values[lo];
    const double dHi = values[hi] - x;
    return dLo <= dHi ? values[lo] : values[hi];
}

double
refGroupMse(std::span<const float> w, std::span<const float> q)
{
    double e = 0.0;
    for (size_t i = 0; i < w.size(); ++i) {
        const double d = static_cast<double>(w[i]) - q[i];
        e += d * d;
    }
    return e / static_cast<double>(w.size());
}

EncodedGroup
refEncodeGrid(std::span<const float> w, const Grid &grid)
{
    EncodedGroup enc;
    enc.qvalues.resize(w.size());
    double lo = w[0], hi = w[0];
    for (const float x : w) {
        lo = std::min<double>(lo, x);
        hi = std::max<double>(hi, x);
    }
    const double scale = grid.fitScale(lo, hi);
    enc.scale = scale;
    if (scale == 0.0)
        return enc;
    for (size_t i = 0; i < w.size(); ++i)
        enc.qvalues[i] =
            static_cast<float>(refNearest(grid, w[i] / scale));
    return enc;
}

/** Seed Algorithm 1: one EncodedGroup + dequant temporary per candidate. */
EncodedGroup
refEncodeAdaptive(std::span<const float> w, const Dtype &dt)
{
    EncodedGroup best;
    double bestErr = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < dt.candidates.size(); ++c) {
        EncodedGroup enc = refEncodeGrid(w, dt.candidates[c]);
        enc.svIndex = static_cast<int>(c);
        std::vector<float> deq(w.size());
        for (size_t i = 0; i < w.size(); ++i)
            deq[i] = static_cast<float>(enc.qvalues[i] * enc.scale);
        const double err = refGroupMse(w, {deq.data(), deq.size()});
        if (err < bestErr) {
            bestErr = err;
            best = std::move(enc);
        }
    }
    return best;
}

/** Seed quantizeMatrix, specialized to per-group adaptive NonLinear. */
QuantizedTensor
refQuantizeMatrix(const Matrix &w, const QuantConfig &cfg)
{
    QuantizedTensor result;
    result.dequant = Matrix(w.rows(), w.cols());
    result.stats.svHistogram.assign(cfg.dtype.candidates.size(), 0);
    const size_t groupSize = static_cast<size_t>(cfg.groupSize);
    const size_t ngroups = w.cols() / groupSize;
    double errSum = 0.0, refSum = 0.0;
    for (size_t r = 0; r < w.rows(); ++r) {
        for (size_t g = 0; g < ngroups; ++g) {
            const auto src = w.group(r, g, groupSize);
            EncodedGroup enc = refEncodeAdaptive(src, cfg.dtype);
            if (enc.svIndex >= 0)
                ++result.stats.svHistogram[enc.svIndex];
            const auto deq = decodeGroup(enc, cfg);
            auto dst = result.dequant.group(r, g, groupSize);
            for (size_t i = 0; i < src.size(); ++i) {
                dst[i] = deq[i];
                const double d = static_cast<double>(src[i]) - deq[i];
                errSum += d * d;
                refSum += static_cast<double>(src[i]) * src[i];
            }
            ++result.stats.groups;
        }
    }
    const size_t n = w.size();
    result.stats.mse = n ? errSum / static_cast<double>(n) : 0.0;
    result.stats.nmse = refSum > 0.0 ? errSum / refSum : 0.0;
    result.stats.bitsPerWeight = bitsPerWeight(cfg, w.cols());
    return result;
}

/** Seed exact-mode dot product: per-weight term vectors, per group. */
double
refDotExact(const EncodedGroupView &enc, std::span<const Float16> acts,
            const Dtype &dt)
{
    const size_t n = enc.qvalues.size();
    const int tpw = termsPerWeight(dt);
    std::vector<std::vector<BitSerialTerm>> terms(n);
    for (size_t i = 0; i < n; ++i) {
        const double q = dt.kind == DtypeKind::IntAsym
                             ? enc.qvalues[i] - enc.zeroPoint
                             : enc.qvalues[i];
        terms[i] = termsForWeight(q, dt);
        while (static_cast<int>(terms[i].size()) < tpw)
            terms[i].push_back(BitSerialTerm{});
    }
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
        const double a = acts[i].toFloat();
        for (const auto &t : terms[i])
            sum += t.value() * a;
    }
    return sum;
}

// ---------------------------------------------------------------------

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

bool
statsIdentical(const QuantStats &a, const QuantStats &b)
{
    return a.mse == b.mse && a.nmse == b.nmse &&
           a.svHistogram == b.svHistogram && a.groups == b.groups;
}

bool
dequantIdentical(const Matrix &a, const Matrix &b)
{
    return a.size() == b.size() &&
           std::memcmp(a.data(), b.data(),
                       a.size() * sizeof(float)) == 0;
}

struct QuantResult
{
    double refWps = 0.0;
    double serialWps = 0.0;
    double parallelWps = 0.0;
    bool identical = false;
};

QuantResult
benchQuantize(const Matrix &w, int iters, int threads)
{
    QuantConfig cfg;
    cfg.dtype = dtypes::bitmodFp4();
    cfg.groupSize = 128;

    QuantConfig serial = cfg;
    serial.threads = 1;
    QuantConfig parallel = cfg;
    parallel.threads = threads;

    const auto ref = refQuantizeMatrix(w, cfg);
    const auto fastSerial = quantizeMatrix(w, serial);
    const auto fastParallel = quantizeMatrix(w, parallel);

    QuantResult out;
    out.identical =
        statsIdentical(ref.stats, fastSerial.stats) &&
        statsIdentical(ref.stats, fastParallel.stats) &&
        dequantIdentical(ref.dequant, fastSerial.dequant) &&
        dequantIdentical(ref.dequant, fastParallel.dequant);

    const double weights =
        static_cast<double>(w.size()) * iters;
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i)
        refQuantizeMatrix(w, cfg);
    out.refWps = weights / secondsSince(t0);

    t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i)
        quantizeMatrix(w, serial);
    out.serialWps = weights / secondsSince(t0);

    t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i)
        quantizeMatrix(w, parallel);
    out.parallelWps = weights / secondsSince(t0);
    return out;
}

struct DotResult
{
    double refWps = 0.0;
    double newWps = 0.0;
    bool identical = false;
};

DotResult
benchDot(const Matrix &w, const Dtype &dt, int iters, Rng &rng)
{
    QuantConfig cfg;
    cfg.dtype = dt;
    cfg.groupSize = 128;
    cfg.captureEncoding = true;
    const auto q = quantizeMatrix(w, cfg);
    const size_t groupSize = 128;

    std::vector<Float16> acts;
    acts.reserve(groupSize);
    for (size_t i = 0; i < groupSize; ++i)
        acts.emplace_back(static_cast<float>(rng.gaussian(0.0, 1.0)));
    const std::span<const Float16> actSpan{acts.data(), acts.size()};

    BitmodPe pe;
    DotResult out;
    out.identical = true;
    for (size_t i = 0; i < q.encoded.size(); ++i) {
        const EncodedGroupView enc = q.encoded.group(i);
        const double a = refDotExact(enc, actSpan, dt) * enc.scale;
        const double b =
            pe.processGroupFp16Scale(enc, actSpan, dt).value;
        if (a != b)
            out.identical = false;
    }

    const double weights = static_cast<double>(q.encoded.size()) *
                           groupSize * iters;
    auto t0 = std::chrono::steady_clock::now();
    double sink = 0.0;
    for (int i = 0; i < iters; ++i)
        for (size_t g = 0; g < q.encoded.size(); ++g)
            sink += refDotExact(q.encoded.group(g), actSpan, dt);
    out.refWps = weights / secondsSince(t0);

    t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i)
        for (size_t g = 0; g < q.encoded.size(); ++g)
            sink += pe.processGroupFp16Scale(q.encoded.group(g),
                                             actSpan, dt)
                        .value;
    out.newWps = weights / secondsSince(t0);
    if (sink == 12345.678)  // defeat dead-code elimination
        std::printf("%f\n", sink);
    return out;
}

struct ColumnBatchResult
{
    double groupAtATimeWps = 0.0;
    double batchedWps = 0.0;
    bool identical = false;
};

/**
 * PE-column batching: a full-channel GEMV simulated group-at-a-time
 * (one processChannel walk per row) vs the batched strip walk that
 * hoists the term-table and reuses each activation slice across the
 * column.  Values and cycle counts must match bit for bit.
 */
ColumnBatchResult
benchColumnBatch(const Matrix &w, const Dtype &dt, int iters, Rng &rng)
{
    QuantConfig cfg;
    cfg.dtype = dt;
    cfg.groupSize = 128;
    cfg.scaleBits = 8;
    cfg.captureEncoding = true;
    const auto q = quantizeMatrix(w, cfg);

    std::vector<Float16> acts;
    acts.reserve(w.cols());
    for (size_t i = 0; i < w.cols(); ++i)
        acts.emplace_back(static_cast<float>(rng.gaussian(0.0, 1.0)));
    const std::span<const Float16> actSpan{acts.data(), acts.size()};

    PeColumn column;
    const size_t rows = w.rows();
    const size_t depth = static_cast<size_t>(column.pesPerColumn());

    ColumnBatchResult out;
    out.identical = true;
    long long cyclesA = 0, cyclesB = 0;
    {
        std::vector<double> a(rows), b(rows);
        for (size_t r = 0; r < rows; ++r) {
            const auto res =
                column.processChannel(q.encoded, r, actSpan, dt);
            a[r] = res.value;
            cyclesA += res.cycles;
        }
        for (size_t r0 = 0; r0 < rows; r0 += depth) {
            const size_t n = std::min(depth, rows - r0);
            const auto strip =
                column.processStrip(q.encoded, r0, n, actSpan, dt);
            for (size_t r = 0; r < n; ++r)
                b[r0 + r] = strip.values[r];
            cyclesB += strip.cycles;
        }
        for (size_t r = 0; r < rows; ++r)
            if (a[r] != b[r])
                out.identical = false;
        if (cyclesA != cyclesB)
            out.identical = false;
    }

    const double weights =
        static_cast<double>(w.size()) * iters;
    double sink = 0.0;
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i)
        for (size_t r = 0; r < rows; ++r)
            sink += column.processChannel(q.encoded, r, actSpan, dt)
                        .value;
    out.groupAtATimeWps = weights / secondsSince(t0);

    t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i)
        for (size_t r0 = 0; r0 < rows; r0 += depth) {
            const size_t n = std::min(depth, rows - r0);
            sink += column.processStrip(q.encoded, r0, n, actSpan, dt)
                        .values[0];
        }
    out.batchedWps = weights / secondsSince(t0);
    if (sink == 12345.678)
        std::printf("%f\n", sink);
    return out;
}

struct PackedStreamResult
{
    double poolWps = 0.0;    //!< float-pool strip walk
    double packedWps = 0.0;  //!< packed-image strip walk
    bool identical = false;  //!< values/cycles/drains/contention match
    size_t packedImageBytes = 0;  //!< byte-exact DRAM image
    size_t floatPoolBytes = 0;    //!< qvalues + descriptors
};

/**
 * Packed-domain streaming: the same batched strip GEMV walked from
 * the float-typed SoA pool vs decoded on the fly from the byte-exact
 * PackedMatrix DRAM image.  Values, cycles, drain events and the
 * contention flag must match bit for bit; the footprint columns feed
 * the perf gate's memory trajectory.
 */
PackedStreamResult
benchPackedStream(const Matrix &w, const Dtype &dt, int iters, Rng &rng)
{
    QuantConfig cfg;
    cfg.dtype = dt;
    cfg.groupSize = 128;
    cfg.scaleBits = 8;
    cfg.captureEncoding = true;
    const auto q = quantizeMatrix(w, cfg);
    const GroupPacker packer(cfg);
    const PackedMatrix packed = packer.packMatrix(q.encoded);

    std::vector<Float16> acts;
    acts.reserve(w.cols());
    for (size_t i = 0; i < w.cols(); ++i)
        acts.emplace_back(static_cast<float>(rng.gaussian(0.0, 1.0)));
    const std::span<const Float16> actSpan{acts.data(), acts.size()};

    PeColumn column;
    const size_t rows = w.rows();
    const size_t depth = static_cast<size_t>(column.pesPerColumn());

    PackedStreamResult out;
    out.packedImageBytes = packed.imageBytes();
    out.floatPoolBytes = q.encoded.elementCount() * sizeof(float) +
                         q.encoded.size() * sizeof(GroupDesc);
    out.identical = true;
    for (size_t r0 = 0; r0 < rows; r0 += depth) {
        const size_t n = std::min(depth, rows - r0);
        const auto a = column.processStrip(q.encoded, r0, n, actSpan,
                                           dt);
        const auto b = column.processStrip(packed, r0, n, actSpan, dt);
        if (a.values != b.values || a.cycles != b.cycles ||
            a.drainEvents != b.drainEvents ||
            a.accumulatorContention != b.accumulatorContention)
            out.identical = false;
    }

    const double weights = static_cast<double>(w.size()) * iters;
    double sink = 0.0;
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i)
        for (size_t r0 = 0; r0 < rows; r0 += depth) {
            const size_t n = std::min(depth, rows - r0);
            sink += column.processStrip(q.encoded, r0, n, actSpan, dt)
                        .values[0];
        }
    out.poolWps = weights / secondsSince(t0);

    t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i)
        for (size_t r0 = 0; r0 < rows; r0 += depth) {
            const size_t n = std::min(depth, rows - r0);
            sink += column.processStrip(packed, r0, n, actSpan, dt)
                        .values[0];
        }
    out.packedWps = weights / secondsSince(t0);
    if (sink == 12345.678)
        std::printf("%f\n", sink);
    return out;
}

/** Throughputs of the three SIMD-dispatched kernels at one tier. */
struct SimdTierNums
{
    double decodeWps = 0.0;  //!< packed-stream group decode
    double dotWps = 0.0;     //!< packed strip dot product (fast kernel)
    double mseWps = 0.0;     //!< adaptive-MSE quantize scan
};

struct SimdResult
{
    /** Tier the dispatcher picked for this run (env respected). */
    const char *dispatchTier = "scalar";
    SimdTierNums dispatch;   //!< kernels at the dispatched tier
    /** Kernels pinned per tier via setTier, Scalar first. */
    std::vector<std::pair<simd::Tier, SimdTierNums>> perTier;
    bool identical = true;   //!< all tiers bit-identical to Scalar
};

/**
 * Per-tier sweep of the vectorized host kernels: pin each tier the
 * machine supports, measure packed decode, the packed strip dot and
 * the adaptive-MSE scan, and verify each tier's outputs equal the
 * scalar tier's bit for bit.  The dispatched (auto-detected) tier is
 * measured separately — that row is what the perf gate tracks.
 */
SimdResult
benchSimd(const Matrix &w, int iters, Rng &rng)
{
    QuantConfig cfg;
    cfg.dtype = dtypes::bitmodFp4();
    cfg.groupSize = 128;
    cfg.scaleBits = 8;
    cfg.captureEncoding = true;
    cfg.threads = 1;
    const auto q = quantizeMatrix(w, cfg);
    const GroupPacker packer(cfg);
    const PackedMatrix packed = packer.packMatrix(q.encoded);

    std::vector<Float16> acts;
    acts.reserve(w.cols());
    for (size_t i = 0; i < w.cols(); ++i)
        acts.emplace_back(static_cast<float>(rng.gaussian(0.0, 1.0)));
    const std::span<const Float16> actSpan{acts.data(), acts.size()};

    PeColumn column;
    StripResult strip;
    const size_t rows = w.rows();
    const size_t depth = static_cast<size_t>(column.pesPerColumn());
    const double weights = static_cast<double>(w.size()) * iters;
    std::vector<float> buf;
    double sink = 0.0;

    const auto measure = [&]() {
        SimdTierNums nums;
        auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < iters; ++i)
            for (size_t g = 0; g < packed.size(); ++g) {
                buf.resize(packed.desc(g).len);
                packed.decodeGroupInto(g, {buf.data(), buf.size()});
                sink += buf[0];
            }
        nums.decodeWps = weights / secondsSince(t0);

        t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < iters; ++i)
            for (size_t r0 = 0; r0 < rows; r0 += depth) {
                const size_t n = std::min(depth, rows - r0);
                column.processStripInto(packed, r0, n, actSpan,
                                        cfg.dtype, strip);
                sink += strip.values[0];
            }
        nums.dotWps = weights / secondsSince(t0);

        t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < iters; ++i)
            sink += quantizeMatrix(w, cfg).stats.mse;
        nums.mseWps = weights / secondsSince(t0);
        return nums;
    };

    SimdResult out;
    std::vector<simd::Tier> tiers{simd::Tier::Scalar};
    if (simd::maxTier() >= simd::Tier::Avx2)
        tiers.push_back(simd::Tier::Avx2);
    if (simd::maxTier() >= simd::Tier::Avx512)
        tiers.push_back(simd::Tier::Avx512);

    // Bit-identity sweep first: scalar is the reference for decode
    // output, strip values/cycles and the quantized pool.
    std::vector<float> refDecode;
    StripResult refStrip;
    QuantizedTensor refQuant;
    for (size_t ti = 0; ti < tiers.size(); ++ti) {
        simd::setTier(tiers[ti]);
        std::vector<float> allDecode;
        for (size_t g = 0; g < packed.size(); ++g) {
            buf.assign(packed.desc(g).len, 0.0f);
            packed.decodeGroupInto(g, {buf.data(), buf.size()});
            allDecode.insert(allDecode.end(), buf.begin(), buf.end());
        }
        column.processStripInto(packed, 0, std::min(depth, rows),
                                actSpan, cfg.dtype, strip);
        auto quant = quantizeMatrix(w, cfg);
        if (ti == 0) {
            refDecode = std::move(allDecode);
            refStrip = strip;
            refQuant = std::move(quant);
        } else if (allDecode != refDecode ||
                   strip.values != refStrip.values ||
                   strip.cycles != refStrip.cycles ||
                   !dequantIdentical(quant.dequant,
                                     refQuant.dequant)) {
            out.identical = false;
        }
    }

    for (const simd::Tier t : tiers) {
        simd::setTier(t);
        out.perTier.emplace_back(t, measure());
    }
    simd::resetTier();
    out.dispatchTier = simd::tierName(simd::activeTier());
    out.dispatch = measure();
    if (sink == 12345.678)
        std::printf("%f\n", sink);
    return out;
}

void
writeJson(const std::string &path, size_t rows, size_t cols,
          int threads, const QuantResult &qr, const DotResult &fp4,
          const DotResult &int8, const ColumnBatchResult &col,
          const PackedStreamResult &ps, const SimdResult &sd)
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"hotpath_throughput\",\n");
    std::fprintf(f, "  \"rows\": %zu,\n  \"cols\": %zu,\n", rows, cols);
    std::fprintf(f, "  \"threads\": %d,\n", threads);
    std::fprintf(f,
                 "  \"quantize_adaptive\": {\"ref_wps\": %.0f, "
                 "\"serial_wps\": %.0f, \"parallel_wps\": %.0f, "
                 "\"speedup_serial\": %.2f, \"speedup_parallel\": %.2f, "
                 "\"bit_identical\": %s},\n",
                 qr.refWps, qr.serialWps, qr.parallelWps,
                 qr.serialWps / qr.refWps, qr.parallelWps / qr.refWps,
                 qr.identical ? "true" : "false");
    std::fprintf(f,
                 "  \"dot_bitmod_fp4\": {\"ref_wps\": %.0f, "
                 "\"new_wps\": %.0f, \"speedup\": %.2f, "
                 "\"bit_identical\": %s},\n",
                 fp4.refWps, fp4.newWps, fp4.newWps / fp4.refWps,
                 fp4.identical ? "true" : "false");
    std::fprintf(f,
                 "  \"dot_int8\": {\"ref_wps\": %.0f, "
                 "\"new_wps\": %.0f, \"speedup\": %.2f, "
                 "\"bit_identical\": %s},\n",
                 int8.refWps, int8.newWps, int8.newWps / int8.refWps,
                 int8.identical ? "true" : "false");
    std::fprintf(f,
                 "  \"pe_column_batch\": {\"group_wps\": %.0f, "
                 "\"batched_wps\": %.0f, \"speedup\": %.2f, "
                 "\"bit_identical\": %s},\n",
                 col.groupAtATimeWps, col.batchedWps,
                 col.batchedWps / col.groupAtATimeWps,
                 col.identical ? "true" : "false");
    std::fprintf(f,
                 "  \"packed_stream\": {\"pool_wps\": %.0f, "
                 "\"packed_wps\": %.0f, \"relative\": %.2f, "
                 "\"packed_vs_pool_speedup\": %.2f, "
                 "\"packed_image_bytes\": %zu, "
                 "\"float_pool_bytes\": %zu, "
                 "\"bit_identical\": %s},\n",
                 ps.poolWps, ps.packedWps, ps.packedWps / ps.poolWps,
                 ps.packedWps / ps.poolWps, ps.packedImageBytes,
                 ps.floatPoolBytes,
                 ps.identical ? "true" : "false");
    // The scalar and dispatched rows carry gated *_wps names (always
    // present, comparable run to run); pinned per-tier numbers keep
    // informational keys because the tier set depends on the runner.
    std::fprintf(f, "  \"simd\": {\"tier\": \"%s\", ", sd.dispatchTier);
    std::fprintf(f, "\"max_tier\": \"%s\", ",
                 simd::tierName(simd::maxTier()));
    for (const auto &[tier, nums] : sd.perTier) {
        if (tier == simd::Tier::Scalar)
            std::fprintf(f,
                         "\"decode_scalar_wps\": %.0f, "
                         "\"dot_scalar_wps\": %.0f, "
                         "\"mse_scalar_wps\": %.0f, ",
                         nums.decodeWps, nums.dotWps, nums.mseWps);
        else
            std::fprintf(f,
                         "\"decode_%s\": %.0f, \"dot_%s\": %.0f, "
                         "\"mse_%s\": %.0f, ",
                         simd::tierName(tier), nums.decodeWps,
                         simd::tierName(tier), nums.dotWps,
                         simd::tierName(tier), nums.mseWps);
    }
    std::fprintf(f,
                 "\"decode_dispatch_wps\": %.0f, "
                 "\"dot_dispatch_wps\": %.0f, "
                 "\"mse_dispatch_wps\": %.0f, "
                 "\"bit_identical\": %s}\n",
                 sd.dispatch.decodeWps, sd.dispatch.dotWps,
                 sd.dispatch.mseWps, sd.identical ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
}

} // namespace

int
main(int argc, char **argv)
{
    size_t rows = 128, cols = 4096;
    int iters = 5;
    int threadsOpt = 0;  // 0 = all hardware threads
    std::string out = "BENCH_hotpath.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires a value\n",
                             arg.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--rows")
            rows = std::stoul(next());
        else if (arg == "--cols")
            cols = std::stoul(next());
        else if (arg == "--iters")
            iters = std::stoi(next());
        else if (arg == "--threads")
            threadsOpt = std::stoi(next());
        else if (arg == "--out")
            out = next();
        else if (arg == "--smoke") {
            rows = 16;
            cols = 1024;
            iters = 2;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--rows N] [--cols N] [--iters N] "
                         "[--threads N] [--out FILE] [--smoke]\n",
                         argv[0]);
            return 1;
        }
    }

    Rng rng(7);
    WeightGenParams p;
    const Matrix w = generateWeights(rows, cols, p, rng);
    const int threads = threadsOpt > 0
                            ? threadsOpt
                            : WorkerPool::shared().threadCount();

    const auto qr = benchQuantize(w, iters, threadsOpt);
    const auto dFp4 = benchDot(w, dtypes::bitmodFp4(), iters, rng);
    const auto dInt8 = benchDot(w, dtypes::intSym(8), iters, rng);
    const auto col = benchColumnBatch(w, dtypes::bitmodFp4(),
                                      std::max(1, iters / 2), rng);
    const auto ps = benchPackedStream(w, dtypes::bitmodFp4(),
                                      std::max(1, iters / 2), rng);
    const auto sd = benchSimd(w, std::max(1, iters / 2), rng);

    TextTable t("Hot-path throughput (weights/sec, " +
                std::to_string(rows) + "x" + std::to_string(cols) +
                ", " + std::to_string(threads) + " threads)");
    t.setHeader({"path", "seed ref", "optimized", "speedup",
                 "bit-identical"});
    t.addRow({"quantizeMatrix bitmod-fp4 (serial)",
              TextTable::num(qr.refWps, 0),
              TextTable::num(qr.serialWps, 0),
              TextTable::num(qr.serialWps / qr.refWps, 2) + "x",
              qr.identical ? "yes" : "NO"});
    t.addRow({"quantizeMatrix bitmod-fp4 (parallel)",
              TextTable::num(qr.refWps, 0),
              TextTable::num(qr.parallelWps, 0),
              TextTable::num(qr.parallelWps / qr.refWps, 2) + "x",
              qr.identical ? "yes" : "NO"});
    t.addRow({"BitmodPe dot bitmod-fp4",
              TextTable::num(dFp4.refWps, 0),
              TextTable::num(dFp4.newWps, 0),
              TextTable::num(dFp4.newWps / dFp4.refWps, 2) + "x",
              dFp4.identical ? "yes" : "NO"});
    t.addRow({"BitmodPe dot int8",
              TextTable::num(dInt8.refWps, 0),
              TextTable::num(dInt8.newWps, 0),
              TextTable::num(dInt8.newWps / dInt8.refWps, 2) + "x",
              dInt8.identical ? "yes" : "NO"});
    t.addRow({"PeColumn GEMV batched strips",
              TextTable::num(col.groupAtATimeWps, 0),
              TextTable::num(col.batchedWps, 0),
              TextTable::num(col.batchedWps / col.groupAtATimeWps, 2) +
                  "x",
              col.identical ? "yes" : "NO"});
    t.addRow({"PeColumn GEMV packed stream",
              TextTable::num(ps.poolWps, 0),
              TextTable::num(ps.packedWps, 0),
              TextTable::num(ps.packedWps / ps.poolWps, 2) + "x",
              ps.identical ? "yes" : "NO"});
    const SimdTierNums &scalar = sd.perTier.front().second;
    t.addRow({std::string("SIMD decode scalar->") + sd.dispatchTier,
              TextTable::num(scalar.decodeWps, 0),
              TextTable::num(sd.dispatch.decodeWps, 0),
              TextTable::num(sd.dispatch.decodeWps / scalar.decodeWps,
                             2) +
                  "x",
              sd.identical ? "yes" : "NO"});
    t.addRow({std::string("SIMD strip dot scalar->") + sd.dispatchTier,
              TextTable::num(scalar.dotWps, 0),
              TextTable::num(sd.dispatch.dotWps, 0),
              TextTable::num(sd.dispatch.dotWps / scalar.dotWps, 2) +
                  "x",
              sd.identical ? "yes" : "NO"});
    t.addRow({std::string("SIMD mse scan scalar->") + sd.dispatchTier,
              TextTable::num(scalar.mseWps, 0),
              TextTable::num(sd.dispatch.mseWps, 0),
              TextTable::num(sd.dispatch.mseWps / scalar.mseWps, 2) +
                  "x",
              sd.identical ? "yes" : "NO"});
    t.addNote("seed ref = pre-optimization code path (per-candidate "
              "allocation, per-weight term recoding); PeColumn rows = "
              "group-at-a-time channel walk vs batched strip walk, and "
              "float-pool strips vs strips decoded from the packed "
              "DRAM image (" +
              std::to_string(ps.packedImageBytes) + " B packed vs " +
              std::to_string(ps.floatPoolBytes) + " B float pool)");
    t.print();

    writeJson(out, rows, cols, threads, qr, dFp4, dInt8, col, ps, sd);
    std::printf("wrote %s\n", out.c_str());

    return (qr.identical && dFp4.identical && dInt8.identical &&
            col.identical && ps.identical && sd.identical)
               ? 0
               : 2;
}
