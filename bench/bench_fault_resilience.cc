/**
 * @file
 * Fault-injection resilience bench: quantifies what the reliability
 * layer buys on the packed weight stream and what it costs.
 *
 * Four measurements, one JSON artifact (BENCH_fault.json) for the CI
 * perf gate:
 *
 *  - decode_detection: per datatype, single-bit flips into the packed
 *    image — how often the checked decoder reports CorruptCode /
 *    CorruptMeta / Truncated (`*_detect_coverage`, gated strictly)
 *    versus decoding cleanly to different values (the silent rate —
 *    what an unprotected stream would feed the GEMV).
 *  - crc_granularity: multi-bit bursts against the ImageProtection
 *    sidecar at row / 256 B / 64 B CRC blocks (`*_coverage`).
 *  - divergence: checked-GEMV relative L2 error versus bit-error rate
 *    (1e-8 … 1e-4) with corrupted groups quarantined to zero.
 *  - protection_overhead / accel_retry: sidecar bandwidth ratios
 *    (`*_overhead`, gated like footprints) and the AccelSim
 *    expected-value retry traffic on Llama-2-7B at BER 1e-6.
 *
 * decode_cost times the trusted versus the checked strip walk
 * (`*_wps`) — the measured price of satellite bounds checking — and
 * carries a bit_identical flag proving the two paths agree exactly on
 * clean images.  Any internal invariant violation (protection-off
 * drift, coverage collapse, overhead mismatch against the analytic
 * formula) exits non-zero.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "accel/accel_config.hh"
#include "accel/perf_model.hh"
#include "common/rng.hh"
#include "model/llm_zoo.hh"
#include "model/traffic.hh"
#include "pe/pe_column.hh"
#include "quant/dtype.hh"
#include "quant/packing.hh"
#include "quant/quantizer.hh"
#include "rel/fault.hh"
#include "rel/integrity.hh"

using namespace bitmod;

namespace
{

int gFailures = 0;

void
invariant(bool ok, const char *what)
{
    if (!ok) {
        std::fprintf(stderr, "INVARIANT FAILED: %s\n", what);
        ++gFailures;
    }
}

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

struct BenchCase
{
    const char *key;  //!< stable JSON field stem
    Dtype dt;
};

std::vector<BenchCase>
benchCases()
{
    return {{"fp4", dtypes::bitmodFp4()},
            {"fp3", dtypes::bitmodFp3()},
            {"int4", dtypes::intSym(4)},
            {"olive4", dtypes::olive(4)}};
}

struct PackedCase
{
    QuantConfig cfg;
    PackedMatrix pm;
    size_t cols = 0;
};

PackedCase
packCase(const Dtype &dt, size_t rows, size_t cols, Rng &rng)
{
    PackedCase c;
    c.cfg.dtype = dt;
    c.cfg.groupSize = 64;
    c.cfg.scaleBits = 8;
    c.cfg.captureEncoding = true;
    c.cols = cols;
    Matrix w(rows, cols);
    for (float &x : w.flat())
        x = static_cast<float>(rng.gaussian(0.0, 0.02));
    for (float &x : w.flat())
        if (rng.uniform() < 0.04)
            x *= static_cast<float>(20.0 + 40.0 * rng.uniform());
    const auto q = quantizeMatrix(w, c.cfg);
    c.pm = GroupPacker(c.cfg).packMatrix(q.encoded);
    return c;
}

std::vector<Float16>
randomActs(size_t n, Rng &rng)
{
    std::vector<Float16> acts;
    acts.reserve(n);
    for (size_t i = 0; i < n; ++i)
        acts.emplace_back(static_cast<float>(rng.gaussian()));
    return acts;
}

/** Decode every group of @p pm via the checked path into one flat
 *  vector (quarantined groups stay zero); returns first bad status. */
DecodeStatus
decodeAll(const PackedMatrix &pm, std::vector<float> &flat)
{
    flat.clear();
    DecodeStatus status = DecodeStatus::Ok;
    std::vector<float> buf;
    for (size_t i = 0; i < pm.size(); ++i) {
        buf.assign(pm.desc(i).len, 0.0f);
        const DecodeStatus st = pm.tryDecodeGroupInto(i, buf);
        if (st != DecodeStatus::Ok && status == DecodeStatus::Ok)
            status = st;
        flat.insert(flat.end(), buf.begin(), buf.end());
    }
    return status;
}

// ----------------------------------------------- per-dtype detection

struct DetectionRow
{
    const char *key;
    double detectCoverage = 1.0;  //!< detected / (detected + silent)
    double silentRate = 0.0;      //!< silent / trials
};

DetectionRow
measureDetection(const BenchCase &bc, size_t rows, size_t cols,
                 int trials, Rng &rng)
{
    DetectionRow out{bc.key, 1.0, 0.0};
    PackedCase c = packCase(bc.dt, rows, cols, rng);
    std::vector<float> clean;
    invariant(decodeAll(c.pm, clean) == DecodeStatus::Ok,
              "clean image decodes Ok");
    long detected = 0, silent = 0;
    std::vector<float> flat;
    for (int t = 0; t < trials; ++t) {
        PackedMatrix mutant = c.pm;
        FaultInjector::flipBit(mutant,
                               rng.below(mutant.imageBytes() * 8));
        const DecodeStatus st = decodeAll(mutant, flat);
        if (st != DecodeStatus::Ok)
            ++detected;
        else if (flat != clean)
            ++silent;
        // else benign: the flip landed in row padding or decoded to
        // the same value — invisible and harmless.
    }
    if (detected + silent > 0)
        out.detectCoverage = static_cast<double>(detected) /
                             static_cast<double>(detected + silent);
    out.silentRate =
        static_cast<double>(silent) / static_cast<double>(trials);
    std::printf("  %-7s detect=%5.1f%%  silent=%5.1f%%  (%d trials)\n",
                bc.key, 100.0 * out.detectCoverage,
                100.0 * out.silentRate, trials);
    return out;
}

// ------------------------------------------- CRC granularity coverage

double
measureCrcCoverage(const PackedCase &c, size_t block_bytes, int trials,
                   int flips_per_trial, Rng &rng)
{
    ProtectionConfig pc;
    pc.scheme = ProtectionScheme::Crc;
    pc.crcBlockBytes = block_bytes;
    const ImageProtection prot(c.pm, pc);
    long detected = 0;
    for (int t = 0; t < trials; ++t) {
        PackedMatrix mutant = c.pm;
        for (int f = 0; f < flips_per_trial; ++f)
            FaultInjector::flipBit(mutant,
                                   rng.below(mutant.imageBytes() * 8));
        for (size_t r = 0; r < mutant.rows(); ++r)
            if (prot.verifyRow(mutant, r) > 0) {
                ++detected;
                break;
            }
    }
    return static_cast<double>(detected) /
           static_cast<double>(trials);
}

// --------------------------------------------- GEMV divergence vs BER

double
measureDivergence(const PackedCase &c, double ber, int trials,
                  Rng &rng)
{
    const auto acts = randomActs(c.cols, rng);
    PackedMatrix clean = c.pm;
    clean.setCheckedDecode(true);
    const auto ref = tileGemv(clean, c.cfg.dtype, acts, 1);
    double refNorm = 0.0;
    for (const double v : ref.values)
        refNorm += v * v;
    refNorm = std::sqrt(refNorm);
    double sum = 0.0;
    for (int t = 0; t < trials; ++t) {
        PackedMatrix mutant = c.pm;
        FaultInjector inj(rng.next());
        inj.injectRate(mutant, ber);
        mutant.setCheckedDecode(true);
        const auto got = tileGemv(mutant, c.cfg.dtype, acts, 1);
        double err = 0.0;
        for (size_t r = 0; r < ref.values.size(); ++r) {
            const double d = got.values[r] - ref.values[r];
            err += d * d;
        }
        sum += refNorm > 0.0 ? std::sqrt(err) / refNorm : 0.0;
    }
    return sum / static_cast<double>(trials);
}

// --------------------------------------- trusted vs checked wall cost

struct DecodeCost
{
    double trustedWps = 0.0;
    double checkedWps = 0.0;
    bool identical = true;
};

DecodeCost
measureDecodeCost(PackedCase &c, size_t rows, int iters, Rng &rng)
{
    DecodeCost out;
    const auto acts = randomActs(c.cols, rng);
    const double weights =
        static_cast<double>(rows) * static_cast<double>(c.cols) *
        static_cast<double>(iters);

    c.pm.setCheckedDecode(false);
    auto trusted = tileGemv(c.pm, c.cfg.dtype, acts, 1);
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i)
        trusted = tileGemv(c.pm, c.cfg.dtype, acts, 1);
    out.trustedWps = weights / secondsSince(t0);

    c.pm.setCheckedDecode(true);
    auto checked = tileGemv(c.pm, c.cfg.dtype, acts, 1);
    t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i)
        checked = tileGemv(c.pm, c.cfg.dtype, acts, 1);
    out.checkedWps = weights / secondsSince(t0);
    c.pm.setCheckedDecode(false);

    out.identical = trusted.values == checked.values &&
                    checked.clean();
    invariant(out.identical,
              "checked decode is bit-identical to trusted on a clean "
              "image");
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    uint64_t seed = 0xFA417;
    std::string out = "BENCH_fault.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke")
            smoke = true;
        else if (arg == "--out" && i + 1 < argc)
            out = argv[++i];
        else if (arg == "--seed" && i + 1 < argc)
            seed = std::strtoull(argv[++i], nullptr, 0);
        else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] [--seed HEX] "
                         "[--out FILE]\n",
                         argv[0]);
            return 2;
        }
    }

    const size_t rows = smoke ? 16 : 32;
    const size_t cols = smoke ? 256 : 1024;
    const int trials = smoke ? 60 : 400;
    const int burstTrials = smoke ? 40 : 200;
    const int divTrials = smoke ? 3 : 8;
    const int costIters = smoke ? 3 : 12;
    Rng rng(seed);
    std::printf("[fault_resilience] rows=%zu cols=%zu trials=%d "
                "seed=0x%llx%s\n\n",
                rows, cols, trials,
                static_cast<unsigned long long>(seed),
                smoke ? " (smoke)" : "");

    // -- per-datatype single-bit detection ---------------------------
    std::printf("single-bit flips, checked decoder:\n");
    std::vector<DetectionRow> detection;
    for (const BenchCase &bc : benchCases())
        detection.push_back(
            measureDetection(bc, rows, cols, trials, rng));

    // -- CRC granularity against 4-bit bursts ------------------------
    PackedCase fp4 = packCase(dtypes::bitmodFp4(), rows, cols, rng);
    const size_t blocks[] = {0, 256, 64};
    const char *blockKeys[] = {"row", "b256", "b64"};
    double crcCov[3];
    std::printf("\nCRC sidecar vs 4-bit bursts:\n");
    for (int i = 0; i < 3; ++i) {
        crcCov[i] = measureCrcCoverage(fp4, blocks[i], burstTrials, 4,
                                       rng);
        std::printf("  %-5s coverage=%6.3f\n", blockKeys[i],
                    crcCov[i]);
    }
    invariant(crcCov[0] >= 0.999,
              "per-row CRC detects >= 99.9% of multi-bit bursts");

    // -- GEMV divergence vs BER --------------------------------------
    const double bers[] = {1e-8, 1e-6, 1e-5, 1e-4};
    const char *berKeys[] = {"ber1e8", "ber1e6", "ber1e5", "ber1e4"};
    double divergence[4];
    std::printf("\nchecked-GEMV relative divergence (quarantine on):\n");
    for (int i = 0; i < 4; ++i) {
        divergence[i] = measureDivergence(fp4, bers[i], divTrials, rng);
        std::printf("  %-7s rel_err=%.3e\n", berKeys[i],
                    divergence[i]);
    }

    // -- protection bandwidth overheads ------------------------------
    // Measured on the real packed image and cross-checked against the
    // analytic ratio the traffic model charges.
    double overheads[4];
    const ProtectionConfig overheadCfgs[] = {
        {ProtectionScheme::Crc, 0},
        {ProtectionScheme::Crc, 256},
        {ProtectionScheme::Crc, 64},
        {ProtectionScheme::CrcSecded, 0},
    };
    const char *overheadKeys[] = {"crc_row", "crc_b256", "crc_b64",
                                  "secded_row"};
    std::printf("\nprotection bandwidth overhead (sidecar/payload):\n");
    for (int i = 0; i < 4; ++i) {
        const ImageProtection prot(fp4.pm, overheadCfgs[i]);
        overheads[i] = prot.overheadRatio();
        size_t analytic = 0;
        for (size_t r = 0; r < fp4.pm.rows(); ++r)
            analytic += analyticProtectionBytes(
                fp4.pm.rowBytes(r).size(), overheadCfgs[i]);
        invariant(prot.bytes() == analytic,
                  "sidecar bytes match the analytic formula");
        std::printf("  %-10s %.4f\n", overheadKeys[i], overheads[i]);
    }

    // -- decode-cost of the checked path -----------------------------
    std::printf("\ntrusted vs checked strip walk:\n");
    DecodeCost cost = measureDecodeCost(fp4, rows, costIters, rng);
    std::printf("  trusted=%.0f wps  checked=%.0f wps  (%.2fx)  "
                "identical=%s\n",
                cost.trustedWps, cost.checkedWps,
                cost.checkedWps / cost.trustedWps,
                cost.identical ? "yes" : "NO");

    // -- AccelSim modeled retry traffic ------------------------------
    const AccelSim sim(makeBitmod());
    const LlmSpec &model = llmByName("Llama-2-7B");
    const TaskSpec task = TaskSpec::generative();
    auto precision = PrecisionChoice::bitmod(dtypes::bitmodFp4());
    const RunReport plain = sim.run(model, task, precision);
    invariant(plain.integrity.protectionBytes == 0.0 &&
                  plain.integrity.retryBytes == 0.0,
              "protection off charges nothing");
    auto protChoice = precision;
    protChoice.setProtection({ProtectionScheme::Crc, 0}, 1e-6);
    const RunReport prot = sim.run(model, task, protChoice);
    invariant(prot.integrity.protectionBytes > 0.0 &&
                  prot.integrity.retryBytes > 0.0,
              "CRC at BER 1e-6 charges sidecar and retry traffic");
    auto secdedChoice = precision;
    secdedChoice.setProtection({ProtectionScheme::CrcSecded, 0}, 1e-6);
    const RunReport secded = sim.run(model, task, secdedChoice);
    invariant(secded.integrity.correctedErrors >
                  secded.integrity.retryBlocks,
              "SECDED corrects most errors in place");
    std::printf("\nLlama-2-7B generative @ BER 1e-6:\n"
                "  crc:    sidecar=%.3e B retry=%.3e B "
                "uncorrectable=%.3e\n"
                "  secded: sidecar=%.3e B retry=%.3e B "
                "corrected=%.3e\n",
                prot.integrity.protectionBytes,
                prot.integrity.retryBytes,
                prot.integrity.uncorrectableErrors,
                secded.integrity.protectionBytes,
                secded.integrity.retryBytes,
                secded.integrity.correctedErrors);

    // -- JSON artifact -----------------------------------------------
    FILE *f = std::fopen(out.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", out.c_str());
        return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"fault_resilience\",\n");
    std::fprintf(f, "  \"rows\": %zu,\n  \"cols\": %zu,\n", rows,
                 cols);
    std::fprintf(f, "  \"trials\": %d,\n", trials);
    std::fprintf(f, "  \"seed\": \"0x%llx\",\n",
                 static_cast<unsigned long long>(seed));
    std::fprintf(f, "  \"decode_detection\": {");
    for (size_t i = 0; i < detection.size(); ++i)
        std::fprintf(f, "%s\"%s_detect_coverage\": %.6f, "
                        "\"%s_silent_rate\": %.6f",
                     i ? ", " : "", detection[i].key,
                     detection[i].detectCoverage, detection[i].key,
                     detection[i].silentRate);
    std::fprintf(f, "},\n");
    std::fprintf(f, "  \"crc_granularity\": {");
    for (int i = 0; i < 3; ++i)
        std::fprintf(f, "%s\"%s_coverage\": %.6f", i ? ", " : "",
                     blockKeys[i], crcCov[i]);
    std::fprintf(f, "},\n");
    std::fprintf(f, "  \"divergence\": {");
    for (int i = 0; i < 4; ++i)
        std::fprintf(f, "%s\"%s_rel_err\": %.6e", i ? ", " : "",
                     berKeys[i], divergence[i]);
    std::fprintf(f, "},\n");
    std::fprintf(f, "  \"protection_overhead\": {");
    for (int i = 0; i < 4; ++i)
        std::fprintf(f, "%s\"%s_overhead\": %.6f", i ? ", " : "",
                     overheadKeys[i], overheads[i]);
    std::fprintf(f, "},\n");
    std::fprintf(f,
                 "  \"decode_cost\": {\"trusted_wps\": %.0f, "
                 "\"checked_wps\": %.0f, \"checked_relative\": %.3f, "
                 "\"bit_identical\": %s},\n",
                 cost.trustedWps, cost.checkedWps,
                 cost.checkedWps / cost.trustedWps,
                 cost.identical ? "true" : "false");
    std::fprintf(f,
                 "  \"accel_retry\": {\"crc_retry_mbytes\": %.4f, "
                 "\"crc_sidecar_mbytes\": %.4f, "
                 "\"crc_uncorrectable\": %.6e, "
                 "\"secded_retry_mbytes\": %.4f, "
                 "\"secded_corrected\": %.4f}\n",
                 prot.integrity.retryBytes / 1e6,
                 prot.integrity.protectionBytes / 1e6,
                 prot.integrity.uncorrectableErrors,
                 secded.integrity.retryBytes / 1e6,
                 secded.integrity.correctedErrors);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", out.c_str());

    if (gFailures) {
        std::fprintf(stderr, "\n%d invariant failure(s)\n", gFailures);
        return 1;
    }
    return 0;
}
