/**
 * @file
 * Design-choice ablation (Section IV-B): KV-cache precision.  The
 * BitMoD PE keeps one FP16 operand, so the key/value tensors of
 * self-attention must be low-precision integers; the paper cites
 * prior work that INT8 (even INT4) KV is near-lossless.  This bench
 * quantifies what KV precision buys in decode latency and energy as
 * the context grows.
 */

#include "bench_util.hh"
#include "accel/perf_model.hh"
#include "common/table.hh"

using namespace bitmod;

int
main()
{
    const AccelSim sim(makeBitmod());
    const auto &model = llmByName("Llama-3-8B");  // GQA, 8 KV heads

    TextTable t("Ablation - KV-cache precision (BitMoD-FP4 weights, "
                "Llama-3-8B)");
    t.setHeader({"Context", "KV bits", "gen latency ms", "energy mJ",
                 "KV share of DRAM bytes"});

    for (const size_t ctx : {256, 1024, 4096}) {
        for (const double kvBits : {16.0, 8.0, 4.0}) {
            PrecisionChoice p =
                PrecisionChoice::bitmod(dtypes::bitmodFp4());
            p.kvBits = kvBits;
            TaskSpec task{ctx, 256};
            const auto r = sim.run(model, task, p);
            // KV bytes for the run (reads + writes) vs weight stream.
            const double steps = 255.0;
            double ctxSum = 0.0;
            for (size_t s = 1; s <= 255; ++s)
                ctxSum += static_cast<double>(ctx + s);
            const double kvBytes =
                model.numLayers * 2.0 * model.kvDim() * (kvBits / 8) *
                (ctxSum + steps + ctx + 255.0);
            const double weightBytes =
                model.totalParams() * p.weightBitsPerElem / 8.0 *
                (steps + 1.0);
            t.addRow({std::to_string(ctx),
                      TextTable::num(kvBits, 0),
                      TextTable::num(r.latencyMs(1.0), 1),
                      TextTable::num(r.energy.totalNj() * 1e-6, 1),
                      TextTable::num(
                          100.0 * kvBytes / (kvBytes + weightBytes),
                          1) + "%"});
        }
        t.addSeparator();
    }
    t.addNote("with batch-1 decode and modest contexts the weights "
              "dominate; KV precision starts to matter at long "
              "contexts (the paper's Fig. 1 discussion)");
    t.print();
    return 0;
}
