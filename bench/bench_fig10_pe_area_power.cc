/**
 * @file
 * Fig. 10 reproduction: normalized area and power of the BitMoD PE
 * against FIGNA-style bit-parallel PEs (fixed FP16xINT8 and the
 * decomposable FP16xINT8 / 2xFP16xINT4 variant), all from the
 * gate-level synthesis model.
 */

#include "bench_util.hh"
#include "synth/pe_synth.hh"

using namespace bitmod;

int
main()
{
    const auto rows = peComparison();
    const double areaRef = rows[0].areaUm2;   // FP-FP16 PE
    const double powerRef = rows[0].powerMw;

    TextTable t("Fig. 10 - PE area & power normalized to FP-FP16");
    t.setHeader({"PE", "Area um2", "Norm area", "Power mW",
                 "Norm power"});
    for (const auto &r : rows) {
        t.addRow({r.name, TextTable::num(r.areaUm2, 1),
                  TextTable::num(r.areaUm2 / areaRef, 3),
                  TextTable::num(r.powerMw, 4),
                  TextTable::num(r.powerMw / powerRef, 3)});
    }
    t.addNote("paper Fig. 10: FP-INT8 smallest; adding decomposable "
              "mixed precision makes the bit-parallel PE *larger* than "
              "FP-FP16, while the bit-serial BitMoD PE supports every "
              "precision below both");
    t.print();
    return 0;
}
