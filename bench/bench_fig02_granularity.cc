/**
 * @file
 * Fig. 2 reproduction: maximum value and value range of the synthetic
 * weights at per-tensor / per-channel / per-group granularity,
 * normalized by the standard deviation at the same granularity and
 * averaged over all vectors.  Per-group must show the tightest
 * statistics — the motivation for per-group quantization.
 */

#include "bench_util.hh"
#include "common/stats.hh"
#include "model/sampler.hh"

using namespace bitmod;

namespace
{

struct GranularityStats
{
    double maxOverSigma = 0.0;
    double rangeOverSigma = 0.0;
};

/** granularity: 0 = per-tensor, 1 = per-channel, 2 = per-group(128). */
GranularityStats
statsAt(const std::vector<EvalLayer> &layers, int granularity)
{
    RunningStat maxStat, rangeStat;
    auto feed = [&](std::span<const float> xs) {
        const auto s = computeStats(xs);
        if (s.stddev <= 0.0)
            return;
        maxStat.add(s.absMax / s.stddev);
        rangeStat.add(s.range / s.stddev);
    };
    for (const auto &layer : layers) {
        const auto &w = layer.weights;
        if (granularity == 0) {
            feed(w.flat());
        } else if (granularity == 1) {
            for (size_t r = 0; r < w.rows(); ++r)
                feed(w.row(r));
        } else {
            for (size_t r = 0; r < w.rows(); ++r)
                for (size_t g = 0; g < w.cols() / 128; ++g)
                    feed(w.group(r, g, 128));
        }
    }
    return {maxStat.mean(), rangeStat.mean()};
}

} // namespace

int
main()
{
    SampleConfig cfg;
    cfg.maxRows = 64;
    cfg.maxCols = 4096;  // keep realistic channel lengths
    benchutil::banner("fig02", cfg);

    TextTable t("Fig. 2 - max & range normalized to sigma");
    t.setHeader({"Model", "Granularity", "max/sigma", "range/sigma"});
    for (const auto &name : benchutil::motivationModels()) {
        const auto layers = sampleModel(llmByName(name), cfg);
        const char *labels[] = {"per-tensor", "per-channel",
                                "per-group(128)"};
        for (int g = 0; g < 3; ++g) {
            const auto s = statsAt(layers, g);
            t.addRow({name, labels[g], TextTable::num(s.maxOverSigma, 2),
                      TextTable::num(s.rangeOverSigma, 2)});
        }
        t.addSeparator();
    }
    t.addNote("paper: per-group has the lowest normalized max and "
              "range, hence the lowest quantization error");
    t.print();
    return 0;
}
