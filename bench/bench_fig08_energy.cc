/**
 * @file
 * Fig. 8 reproduction: energy breakdown (DRAM vs on-chip buffers vs
 * core) of all accelerators, normalized to the baseline FP16
 * accelerator, for discriminative and generative tasks under the
 * lossless (LL) and lossy (LY) configurations.
 *
 * --measured re-runs every deployment in measurement-driven mode
 * (exact PackedMatrix DRAM bytes, effectual-term compute cycles) and
 * reports the analytic-vs-measured efficiency deltas.  --out emits
 * the geomean efficiency ratios as BENCH_fig08.json for the CI perf
 * gate.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/stats.hh"
#include "core/bitmod_api.hh"

using namespace bitmod;

namespace
{

/** Geomean energy-efficiency ratios of one sweep. */
struct EnergySummary
{
    std::vector<double> ll, lyAnt, lyOlive;

    double llGeo() const { return geoMean(ll); }
    double lyAntGeo() const { return geoMean(lyAnt); }
    double lyOliveGeo() const { return geoMean(lyOlive); }
};

/** One full Fig. 8 sweep; appends rows to @p t when not null. */
EnergySummary
sweep(const std::vector<std::string> &models, bool measured,
      ProfileCache *cache, TextTable *t)
{
    EnergySummary s;
    for (const Workload workload :
         {Workload::Discriminative, Workload::Generative}) {
        const bool generative = workload == Workload::Generative;
        const auto deploy = [&](const std::string &accel,
                                const std::string &model,
                                Policy policy, bool meas) {
            DeployRequest r(accel, model);
            r.with(workload).with(policy);
            if (meas)
                r.withMeasured(cache);
            return simulateDeployment(r);
        };
        for (const auto &name : models) {
            const auto base = deploy("Baseline-FP16", name,
                                     Policy::Lossless, false);
            const double ref = base.report.energy.totalNj();

            const auto emit = [&](const char *label,
                                  const DeploymentSummary &d) {
                if (!t)
                    return;
                const auto &e = d.report.energy;
                t->addRow({generative ? "gen" : "disc", name, label,
                           TextTable::num(e.dramNj / ref, 3),
                           TextTable::num(e.bufferNj / ref, 3),
                           TextTable::num(e.coreNj / ref, 3),
                           TextTable::num(e.totalNj() / ref, 3)});
            };

            emit("Baseline", base);
            const auto ant =
                deploy("ANT", name, Policy::Lossy, measured);
            emit("ANT-LY", ant);
            const auto olive =
                deploy("OliVe", name, Policy::Lossy, measured);
            emit("OliVe-LY", olive);
            const auto ll =
                deploy("BitMoD", name, Policy::Lossless, measured);
            emit("BitMoD-LL", ll);
            const auto ly =
                deploy("BitMoD", name, Policy::Lossy, measured);
            emit("BitMoD-LY", ly);

            s.ll.push_back(ref / ll.report.energy.totalNj());
            s.lyAnt.push_back(ant.report.energy.totalNj() /
                              ly.report.energy.totalNj());
            s.lyOlive.push_back(olive.report.energy.totalNj() /
                                ly.report.energy.totalNj());
            if (t)
                t->addSeparator();
        }
    }
    return s;
}

void
writeJson(const std::string &path, const EnergySummary &analytic,
          const EnergySummary *measured)
{
    FILE *f = benchutil::openBenchJson(path);
    std::fprintf(f, "{\n  \"bench\": \"fig08_energy\",\n");
    std::fprintf(f,
                 "  \"fig08_analytic\": {\"bitmod_ll_eff\": %.4f, "
                 "\"bitmod_ly_vs_ant_eff\": %.4f, "
                 "\"bitmod_ly_vs_olive_eff\": %.4f}%s\n",
                 analytic.llGeo(), analytic.lyAntGeo(),
                 analytic.lyOliveGeo(), measured ? "," : "");
    if (measured)
        std::fprintf(f,
                     "  \"fig08_measured\": {\"bitmod_ll_eff\": %.4f, "
                     "\"bitmod_ly_vs_ant_eff\": %.4f, "
                     "\"bitmod_ly_vs_olive_eff\": %.4f}\n",
                     measured->llGeo(), measured->lyAntGeo(),
                     measured->lyOliveGeo());
    std::fprintf(f, "}\n");
    std::fclose(f);
}

} // namespace

int
main(int argc, char **argv)
{
    const auto args = benchutil::parseFigBenchArgs(argc, argv);
    const auto &models = args.models;

    TextTable t("Fig. 8 - normalized energy breakdown "
                "(1.0 = baseline total, analytic model)");
    t.setHeader({"Task", "Model", "Accel", "DRAM", "Buffer", "Core",
                 "Total"});
    const EnergySummary analytic =
        sweep(models, false, nullptr, &t);
    t.addNote("geomean energy efficiency: BitMoD-LL vs baseline " +
              TextTable::num(analytic.llGeo(), 2) +
              "x (paper 2.31x) | BitMoD-LY vs ANT " +
              TextTable::num(analytic.lyAntGeo(), 2) +
              "x (paper 1.48x) | vs OliVe " +
              TextTable::num(analytic.lyOliveGeo(), 2) + "x (paper "
              "1.31x)");
    t.print();

    EnergySummary measuredSummary;
    if (args.measured) {
        TextTable m("Fig. 8 - measured mode (packed-image DRAM bytes, "
                    "effectual-term compute)");
        m.setHeader({"Task", "Model", "Accel", "DRAM", "Buffer",
                     "Core", "Total"});
        // Sweep-wide memoization: one measurement per (model,
        // QuantConfig) pair instead of one per task.
        ProfileCache cache;
        measuredSummary = sweep(models, true, &cache, &m);
        const auto &delta = benchutil::pctDelta;
        m.addNote("geomean measured efficiency: BitMoD-LL " +
                  TextTable::num(measuredSummary.llGeo(), 2) +
                  "x | BitMoD-LY vs ANT " +
                  TextTable::num(measuredSummary.lyAntGeo(), 2) +
                  "x | vs OliVe " +
                  TextTable::num(measuredSummary.lyOliveGeo(), 2) +
                  "x");
        m.addNote("measured vs analytic delta: BitMoD-LL " +
                  delta(analytic.llGeo(), measuredSummary.llGeo()) +
                  " | LY vs ANT " +
                  delta(analytic.lyAntGeo(),
                        measuredSummary.lyAntGeo()) +
                  " | LY vs OliVe " +
                  delta(analytic.lyOliveGeo(),
                        measuredSummary.lyOliveGeo()));
        m.print();
    }

    if (!args.out.empty())
        writeJson(args.out, analytic,
                  args.measured ? &measuredSummary : nullptr);
    return 0;
}
