/**
 * @file
 * Fig. 8 reproduction: energy breakdown (DRAM vs on-chip buffers vs
 * core) of all accelerators, normalized to the baseline FP16
 * accelerator, for discriminative and generative tasks under the
 * lossless (LL) and lossy (LY) configurations.
 */

#include "bench_util.hh"
#include "common/stats.hh"
#include "core/bitmod_api.hh"

using namespace bitmod;

int
main(int argc, char **argv)
{
    // --functional: before the analytic tables, validate the batched
    // bit-serial PE-column pipeline at a real model shape (full
    // hidden-dim GEMV vs the dequantized reference).
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--functional") {
            benchutil::functionalGemvCheck(
                benchutil::allModels().front());
        } else {
            std::fprintf(stderr, "usage: %s [--functional]\n",
                         argv[0]);
            return 1;
        }
    }
    TextTable t("Fig. 8 - normalized energy breakdown "
                "(1.0 = baseline total)");
    t.setHeader({"Task", "Model", "Accel", "DRAM", "Buffer", "Core",
                 "Total"});

    std::vector<double> effLl, effLyAnt, effLyOlive;

    for (const bool generative : {false, true}) {
        for (const auto &name : benchutil::allModels()) {
            const auto base = simulateDeployment("Baseline-FP16", name,
                                                 generative, true);
            const double ref = base.report.energy.totalNj();

            const auto emit = [&](const char *label,
                                  const DeploymentSummary &s) {
                const auto &e = s.report.energy;
                t.addRow({generative ? "gen" : "disc", name, label,
                          TextTable::num(e.dramNj / ref, 3),
                          TextTable::num(e.bufferNj / ref, 3),
                          TextTable::num(e.coreNj / ref, 3),
                          TextTable::num(e.totalNj() / ref, 3)});
            };

            emit("Baseline", base);
            const auto ant =
                simulateDeployment("ANT", name, generative, false);
            emit("ANT-LY", ant);
            const auto olive =
                simulateDeployment("OliVe", name, generative, false);
            emit("OliVe-LY", olive);
            const auto ll =
                simulateDeployment("BitMoD", name, generative, true);
            emit("BitMoD-LL", ll);
            const auto ly =
                simulateDeployment("BitMoD", name, generative, false);
            emit("BitMoD-LY", ly);

            effLl.push_back(ref / ll.report.energy.totalNj());
            effLyAnt.push_back(ant.report.energy.totalNj() /
                               ly.report.energy.totalNj());
            effLyOlive.push_back(olive.report.energy.totalNj() /
                                 ly.report.energy.totalNj());
            t.addSeparator();
        }
    }

    t.addNote("geomean energy efficiency: BitMoD-LL vs baseline " +
              TextTable::num(geoMean(effLl), 2) +
              "x (paper 2.31x) | BitMoD-LY vs ANT " +
              TextTable::num(geoMean(effLyAnt), 2) +
              "x (paper 1.48x) | vs OliVe " +
              TextTable::num(geoMean(effLyOlive), 2) +
              "x (paper 1.31x)");
    t.print();
    return 0;
}
