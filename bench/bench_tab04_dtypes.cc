/**
 * @file
 * Table IV reproduction: the extended-resolution (ER) and extended-
 * asymmetry (EA) FP3/FP4 datatype definitions, dumped straight from
 * the datatype registry (also covered by unit tests), plus the
 * per-group storage cost of Section III-C's overhead analysis.
 */

#include "bench_util.hh"
#include "quant/quantizer.hh"

using namespace bitmod;

int
main()
{
    TextTable t("Table IV - extended FP3/FP4 datatypes");
    t.setHeader({"Dtype", "Candidates", "Special values",
                 "Grid (first candidate)"});
    for (const Dtype &dt :
         {dtypes::fp3(), dtypes::fp3Er(), dtypes::fp3Ea(),
          dtypes::fp4(), dtypes::fp4Er(), dtypes::fp4Ea(),
          dtypes::bitmodFp3(), dtypes::bitmodFp4()}) {
        std::string specials;
        for (size_t i = 0; i < dt.specialValues.size(); ++i) {
            if (i)
                specials += ", ";
            specials += TextTable::num(dt.specialValues[i], 1);
        }
        t.addRow({dt.name, std::to_string(dt.candidates.size()),
                  specials, dt.candidates[0].describe()});
    }
    t.print();

    TextTable o("Section III-C - per-group memory overhead "
                "(group 128)");
    o.setHeader({"Scheme", "bits/weight", "overhead vs element bits"});
    QuantConfig bm3;
    bm3.dtype = dtypes::bitmodFp3();
    bm3.scaleBits = 8;
    QuantConfig bm4;
    bm4.dtype = dtypes::bitmodFp4();
    bm4.scaleBits = 8;
    QuantConfig ia4;
    ia4.dtype = dtypes::intAsym(4);  // 16-bit SF + 8-bit zero point
    for (const auto &[label, cfg] :
         std::vector<std::pair<const char *, QuantConfig>>{
             {"BitMoD-FP3 (8b SF + 2b SV)", bm3},
             {"BitMoD-FP4 (8b SF + 2b SV)", bm4},
             {"INT4-Asym (16b SF + 8b ZP)", ia4}}) {
        const double bits = bitsPerWeight(cfg, 4096);
        o.addRow({label, TextTable::num(bits, 4),
                  TextTable::num(bits - cfg.dtype.bits, 4)});
    }
    o.addNote("paper: BitMoD's 10-bit group metadata is ~4x cheaper "
              "than the 24-bit metadata of asymmetric-integer schemes");
    o.print();
    return 0;
}
