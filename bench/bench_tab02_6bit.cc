/**
 * @file
 * Table II reproduction: Wikitext-2 and C4 proxy perplexity of 6-bit
 * datatypes under per-group quantization.  The paper's point: all
 * studied 6-bit types are near-lossless, motivating INT6 as BitMoD's
 * "lossless" deployment precision.
 */

#include "bench_util.hh"

using namespace bitmod;

int
main()
{
    const SampleConfig cfg = rtnSweepConfig();
    benchutil::banner("tab02", cfg);

    const std::vector<std::pair<const char *, Dtype>> rows = {
        {"INT6-Sym", dtypes::intSym(6)},
        {"INT6-Asym", dtypes::intAsym(6)},
        {"FP6-E2M3", dtypes::fp6e2m3()},
        {"FP6-E3M2", dtypes::fp6e3m2()},
    };

    TextTable t("Table II - 6-bit datatype proxy perplexity (PG 128)");
    std::vector<std::string> header = {"Datatype"};
    for (const auto &name : benchutil::motivationModels()) {
        header.push_back(name + " Wiki");
        header.push_back(name + " C4");
    }
    t.setHeader(header);

    std::vector<std::string> fp16Row = {"FP16"};
    for (const auto &name : benchutil::motivationModels()) {
        const auto &m = llmByName(name);
        fp16Row.push_back(TextTable::num(m.anchors.fp16PplWiki, 2));
        fp16Row.push_back(TextTable::num(m.anchors.fp16PplC4, 2));
    }
    t.addRow(fp16Row);
    t.addSeparator();

    for (const auto &[label, dtype] : rows) {
        std::vector<std::string> cells = {label};
        for (const auto &name : benchutil::motivationModels()) {
            ModelEvalContext ctx(llmByName(name), cfg);
            QuantConfig qc;
            qc.dtype = dtype;
            const double loss = ctx.rtnLoss(qc);
            cells.push_back(TextTable::num(ctx.pplWiki(loss), 2));
            cells.push_back(TextTable::num(ctx.pplC4(loss), 2));
        }
        t.addRow(cells);
    }
    t.addNote("paper Table II: every 6-bit type is within ~0.05 PPL of "
              "FP16 on average");
    t.print();
    return 0;
}
