/**
 * @file
 * Table XII reproduction: weight datatypes with FP16 activations vs
 * SmoothQuant INT8 activations (SQ8) on the three Llama models.
 * Losses are output-space (both operands quantized for the SQ8
 * columns) and mapped through the anchored proxy; the BitMoD
 * advantage over INT-Asym must survive activation quantization.
 */

#include "bench_util.hh"
#include "methods/smoothquant.hh"

using namespace bitmod;

namespace
{

double
modelLoss(const std::vector<EvalLayer> &layers, const QuantConfig &wcfg,
          bool sq8)
{
    double loss = 0.0;
    for (const auto &l : layers) {
        if (sq8) {
            SmoothQuantConfig scfg;
            loss += l.paramWeight * smoothQuantOutputLoss(l, wcfg, scfg);
        } else {
            loss += l.paramWeight * plainOutputLoss(l, wcfg);
        }
    }
    return loss;
}

} // namespace

int
main()
{
    const SampleConfig cfg = methodSweepConfig();
    benchutil::banner("tab12", cfg);

    TextTable t("Table XII - Wikitext proxy perplexity, FP16 vs "
                "SmoothQuant-INT8 activations");
    std::vector<std::string> header = {"W prec", "W datatype"};
    for (const auto &name : benchutil::llamaModels()) {
        header.push_back(name + " FP16");
        header.push_back(name + " SQ8");
    }
    t.setHeader(header);

    // Contexts with calibrated (output-space) anchors.
    std::vector<ModelEvalContext> ctxs;
    for (const auto &name : benchutil::llamaModels())
        ctxs.emplace_back(llmByName(name), cfg, /*loss_mode=*/1);

    const auto emit = [&](const char *prec, const char *label,
                          const Dtype &dtype) {
        std::vector<std::string> cells = {prec, label};
        for (auto &ctx : ctxs) {
            QuantConfig wcfg;
            wcfg.dtype = dtype;
            const double lossFp16 =
                modelLoss(ctx.layers(), wcfg, false);
            const double lossSq8 = modelLoss(ctx.layers(), wcfg, true);
            cells.push_back(TextTable::num(ctx.pplWiki(lossFp16), 2));
            cells.push_back(TextTable::num(ctx.pplWiki(lossSq8), 2));
        }
        t.addRow(cells);
    };

    emit("8b", "INT8", dtypes::intSym(8));
    t.addSeparator();
    emit("4b", "INT4-Asym", dtypes::intAsym(4));
    emit("4b", "BitMoD", dtypes::bitmodFp4());
    t.addSeparator();
    emit("3b", "INT3-Asym", dtypes::intAsym(3));
    emit("3b", "BitMoD", dtypes::bitmodFp3());

    t.addNote("paper Table XII: BitMoD's improvement over INT-Asym "
              "persists under INT8 activations, especially at 3-bit");
    t.print();
    return 0;
}
