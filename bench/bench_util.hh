/**
 * @file
 * Shared helpers for the bench binaries that regenerate the paper's
 * tables and figures.  Every bench prints the sampler seed so rows are
 * exactly reproducible.
 */

#ifndef BITMOD_BENCH_BENCH_UTIL_HH
#define BITMOD_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/table.hh"
#include "core/bitmod_api.hh"
#include "core/experiments.hh"
#include "model/llm_zoo.hh"
#include "pe/pe_column.hh"
#include "quant/packing.hh"

namespace bitmod::benchutil
{

/** The four models of the motivation studies (Figs. 1-2, Tables I/II/V). */
inline std::vector<std::string>
motivationModels()
{
    return {"OPT-1.3B", "Phi-2B", "Llama-2-7B", "Llama-2-13B"};
}

/** All six evaluated models (Tables VI/VII, Figs. 7/8). */
inline std::vector<std::string>
allModels()
{
    std::vector<std::string> names;
    for (const auto &m : llmZoo())
        names.push_back(m.name);
    return names;
}

/** The three Llama models of Tables VIII/XI/XII. */
inline std::vector<std::string>
llamaModels()
{
    return {"Llama-2-7B", "Llama-2-13B", "Llama-3-8B"};
}

/** Print the standard reproducibility banner. */
inline void
banner(const char *experiment, const SampleConfig &cfg)
{
    std::printf("[%s] sampler: rows<=%zu cols<=%zu calib=%zu "
                "seed=0x%llx\n\n",
                experiment, cfg.maxRows, cfg.maxCols, cfg.calibSamples,
                static_cast<unsigned long long>(cfg.seed));
}

/**
 * Functional cross-check behind the speedup/energy harnesses: run a
 * model-shaped GEMV strip (full hidden-dim columns of @p model_name,
 * @p rows output channels) through the batched bit-serial PE-column
 * pipeline — byte-exact PackedMatrix DRAM image, packed-streaming
 * strip walk, INT8 second-level scales — and compare against the
 * dequantized-weight reference (1e-4 relative tolerance: the
 * bit-serial pipeline and the float GEMV accumulate in different
 * orders).  Validates that the analytic Fig. 7/8 numbers rest on a
 * pipeline that actually reproduces the math at model shapes from
 * the deployment memory layout, and prints the simulated weight
 * throughput and packed footprint.  Enabled by the --functional flag.
 */
inline void
functionalGemvCheck(const std::string &model_name, size_t rows = 256)
{
    const LlmSpec &model = llmByName(model_name);
    const size_t cols = model.hiddenDim;
    Rng rng(0xF16);
    Matrix w(rows, cols);
    for (float &x : w.flat())
        x = static_cast<float>(rng.gaussian(0.0, 0.02));
    std::vector<Float16> acts;
    acts.reserve(cols);
    for (size_t i = 0; i < cols; ++i)
        acts.emplace_back(static_cast<float>(rng.gaussian(0.0, 1.0)));
    const std::span<const Float16> actSpan{acts.data(), acts.size()};

    const auto q = bitmodQuantizeEncoded(w, 4);
    const QuantConfig cfg = bitmodConfig(4);
    const GroupPacker packer(cfg);
    const PackedMatrix packed = packer.packMatrix(q.encoded);

    const auto t0 = std::chrono::steady_clock::now();
    PeColumn column;
    const size_t depth = static_cast<size_t>(column.pesPerColumn());
    std::vector<double> out(rows);
    long long cycles = 0;
    for (size_t r0 = 0; r0 < rows; r0 += depth) {
        const size_t n = std::min(depth, rows - r0);
        const auto strip =
            column.processStrip(packed, r0, n, actSpan, cfg.dtype);
        std::memcpy(out.data() + r0, strip.values.data(),
                    n * sizeof(double));
        cycles += strip.cycles;
    }
    const double secs =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
            .count();

    double maxRel = 0.0;
    for (size_t r = 0; r < rows; ++r) {
        double ref = 0.0;
        for (size_t c = 0; c < cols; ++c)
            ref += static_cast<double>(q.dequant(r, c)) *
                   acts[c].toFloat();
        const double rel = std::fabs(out[r] - ref) /
                           (1e-12 + std::fabs(ref));
        maxRel = std::max(maxRel, rel);
    }
    std::printf("[functional] %s-shaped GEMV (%zux%zu) streamed from "
                "the packed DRAM image (%.2f bits/weight, %zu bytes) "
                "through batched PE columns: max rel err %.2e, %lld "
                "dot cycles, %.2e weights/sec %s\n",
                model_name.c_str(), rows, cols,
                8.0 * packed.imageBytes() /
                    static_cast<double>(rows * cols),
                packed.imageBytes(), maxRel, cycles,
                static_cast<double>(rows) * cols / secs,
                maxRel < 1e-4 ? "[OK]" : "[MISMATCH]");
    if (maxRel >= 1e-4)
        std::exit(2);
}

/** Flags shared by the measured-mode figure benches (fig07/fig08). */
struct FigBenchArgs
{
    bool measured = false;         //!< run the measured-mode sweep too
    bool batchSweep = false;       //!< fig07: batched-decode sweep too
    std::string out;               //!< JSON artifact path ("" = none)
    std::vector<std::string> models;  //!< evaluated models (truncated)
};

/**
 * Parse the common fig-bench CLI: --functional (runs the GEMV
 * cross-check immediately), --measured, --batch-sweep, --models N,
 * --out FILE.  Exits with usage on unknown flags.
 */
inline FigBenchArgs
parseFigBenchArgs(int argc, char **argv)
{
    FigBenchArgs a;
    size_t maxModels = 0;  // 0 = all
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires a value\n",
                             arg.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--functional") {
            functionalGemvCheck(allModels().front());
        } else if (arg == "--measured") {
            a.measured = true;
        } else if (arg == "--batch-sweep") {
            a.batchSweep = true;
        } else if (arg == "--out") {
            a.out = next();
        } else if (arg == "--models") {
            const std::string value = next();
            char *end = nullptr;
            maxModels = std::strtoul(value.c_str(), &end, 10);
            if (end == value.c_str() || *end != '\0') {
                std::fprintf(stderr, "--models needs a number, got "
                                     "'%s'\n", value.c_str());
                std::exit(1);
            }
        } else {
            std::fprintf(stderr,
                         "usage: %s [--functional] [--measured] "
                         "[--batch-sweep] [--models N] [--out FILE]\n",
                         argv[0]);
            std::exit(1);
        }
    }
    a.models = allModels();
    if (maxModels > 0 && maxModels < a.models.size())
        a.models.resize(maxModels);
    return a;
}

/** What a serving-capacity calibration yields for one configuration. */
struct ServingCalibration
{
    /** Saturation throughput of a closed-loop burst run. */
    double capacityRps = 0.0;
    /** p99 TTFT budget: 5x the unloaded single-request TTFT p50. */
    double sloTtftBudgetMs = 0.0;
    /** p99 TPOT budget: 3x the unloaded single-request TPOT p50. */
    double sloTpotBudgetMs = 0.0;
};

/**
 * The closed-loop capacity calibration shared by the serving-style
 * sweeps (bench_serving_sweep, bench_sharding_sweep): derive the SLO
 * budgets from an unloaded single-request run (5x TTFT p50, 3x TPOT
 * p50), then measure saturation capacity with a burst run (every
 * request queued at cycle 0).  @p run maps ServingParams to the
 * ServingReport of whatever simulator the sweep drives; it is invoked
 * exactly twice, in this order, so a sweep that calibrates through
 * this helper is bit-identical to one that inlines the two runs.
 */
template <typename RunFn>
inline ServingCalibration
calibrateServing(const ServingParams &base, RunFn &&run)
{
    ServingCalibration cal;
    ServingParams one = base;
    one.arrivalRatePerSec = 0.0;
    one.numRequests = 1;
    const ServingReport unloaded = run(one);
    cal.sloTtftBudgetMs = 5.0 * unloaded.ttftMs.p50;
    cal.sloTpotBudgetMs = 3.0 * unloaded.tpotMs.p50;

    ServingParams burst = base;
    burst.arrivalRatePerSec = 0.0;
    cal.capacityRps = run(burst).achievedRps;
    return cal;
}

/** Open a bench JSON artifact for writing; exits loudly on failure. */
inline FILE *
openBenchJson(const std::string &path)
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        std::exit(1);
    }
    return f;
}

/** "+x.y%" delta of @p to relative to @p from, for bench notes. */
inline std::string
pctDelta(double from, double to)
{
    return TextTable::num((to / from - 1.0) * 100.0, 1) + "%";
}

} // namespace bitmod::benchutil

#endif // BITMOD_BENCH_BENCH_UTIL_HH
