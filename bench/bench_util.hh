/**
 * @file
 * Shared helpers for the bench binaries that regenerate the paper's
 * tables and figures.  Every bench prints the sampler seed so rows are
 * exactly reproducible.
 */

#ifndef BITMOD_BENCH_BENCH_UTIL_HH
#define BITMOD_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <vector>

#include "common/table.hh"
#include "core/experiments.hh"
#include "model/llm_zoo.hh"

namespace bitmod::benchutil
{

/** The four models of the motivation studies (Figs. 1-2, Tables I/II/V). */
inline std::vector<std::string>
motivationModels()
{
    return {"OPT-1.3B", "Phi-2B", "Llama-2-7B", "Llama-2-13B"};
}

/** All six evaluated models (Tables VI/VII, Figs. 7/8). */
inline std::vector<std::string>
allModels()
{
    std::vector<std::string> names;
    for (const auto &m : llmZoo())
        names.push_back(m.name);
    return names;
}

/** The three Llama models of Tables VIII/XI/XII. */
inline std::vector<std::string>
llamaModels()
{
    return {"Llama-2-7B", "Llama-2-13B", "Llama-3-8B"};
}

/** Print the standard reproducibility banner. */
inline void
banner(const char *experiment, const SampleConfig &cfg)
{
    std::printf("[%s] sampler: rows<=%zu cols<=%zu calib=%zu "
                "seed=0x%llx\n\n",
                experiment, cfg.maxRows, cfg.maxCols, cfg.calibSamples,
                static_cast<unsigned long long>(cfg.seed));
}

} // namespace bitmod::benchutil

#endif // BITMOD_BENCH_BENCH_UTIL_HH
