/**
 * @file
 * Table XI reproduction: composing BitMoD with software-only
 * quantization methods on the three Llama models.  QuaRot and GPTQ
 * are weight-only baselines; AWQ and OmniQuant run with both their
 * native INT-Asym quantizer and the BitMoD datatypes ("BitMoD + X").
 * Losses are calibrated (output-space) and mapped through the same
 * anchored proxy as everywhere else.
 */

#include "bench_util.hh"
#include "methods/awq.hh"
#include "methods/gptq.hh"
#include "methods/omniquant.hh"
#include "methods/quarot.hh"

using namespace bitmod;

int
main()
{
    const SampleConfig cfg = methodSweepConfig();
    benchutil::banner("tab11", cfg);

    TextTable t("Table XI - software methods x datatypes "
                "(proxy perplexity)");
    std::vector<std::string> header = {"Prec", "Method"};
    for (const auto &name : benchutil::llamaModels()) {
        header.push_back(name + " W");
        header.push_back(name + " C4");
    }
    header.push_back("mean dPPL");
    t.setHeader(header);

    std::vector<ModelEvalContext> ctxs;
    for (const auto &name : benchutil::llamaModels())
        ctxs.emplace_back(llmByName(name), cfg, /*loss_mode=*/1);

    const auto emit = [&](const char *prec, const char *label,
                          const std::function<QuantFn(int)> &make) {
        const int bits = prec[0] - '0';
        std::vector<std::string> cells = {prec, label};
        double deltaSum = 0.0;
        int count = 0;
        for (auto &ctx : ctxs) {
            const double loss = ctx.loss(make(bits));
            const double wiki = ctx.pplWiki(loss);
            const double c4 = ctx.pplC4(loss);
            cells.push_back(TextTable::num(wiki, 2));
            cells.push_back(TextTable::num(c4, 2));
            deltaSum += (wiki - ctx.spec().anchors.fp16PplWiki) +
                        (c4 - ctx.spec().anchors.fp16PplC4);
            count += 2;
        }
        cells.push_back(TextTable::num(deltaSum / count, 2));
        t.addRow(cells);
    };

    const auto intCfg = [](int bits) {
        QuantConfig c;
        c.dtype = dtypes::intAsym(bits);
        return c;
    };
    const auto intSymCfg = [](int bits) {
        QuantConfig c;
        c.dtype = dtypes::intSym(bits);
        return c;
    };
    const auto bmCfg = [](int bits) {
        QuantConfig c;
        c.dtype = bits == 3 ? dtypes::bitmodFp3() : dtypes::bitmodFp4();
        return c;
    };

    for (const char *prec : {"4b", "3b"}) {
        emit(prec, "QuaRot",
             [&](int b) { return quarotFn(intSymCfg(b)); });
        emit(prec, "GPTQ", [&](int b) { return gptqFn(intCfg(b)); });
        emit(prec, "AWQ", [&](int b) { return awqFn(intCfg(b)); });
        emit(prec, "OmniQ",
             [&](int b) { return omniquantFn(intCfg(b)); });
        emit(prec, "BitMoD+AWQ",
             [&](int b) { return awqFn(bmCfg(b)); });
        emit(prec, "BitMoD+OmniQ",
             [&](int b) { return omniquantFn(bmCfg(b)); });
        t.addSeparator();
    }
    t.addNote("paper Table XI: BitMoD+AWQ / BitMoD+OmniQuant achieve "
              "the best perplexity at both precisions (<1 mean dPPL)");
    t.print();
    return 0;
}
