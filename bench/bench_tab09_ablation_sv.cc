/**
 * @file
 * Table IX reproduction: FP3 special-value set ablation — the adopted
 * {+/-3, +/-6} mixture vs {+/-5, +/-6} (asymmetry-only) and
 * {+/-3, +/-5}.
 */

#include "bench_util.hh"

using namespace bitmod;

int
main()
{
    const SampleConfig cfg = rtnSweepConfig();
    benchutil::banner("tab09", cfg);

    const std::vector<std::string> models = {"OPT-1.3B", "Phi-2B",
                                             "Llama-2-7B", "Llama-3-8B"};
    std::vector<ModelEvalContext> ctxs;
    for (const auto &name : models)
        ctxs.emplace_back(llmByName(name), cfg);

    const std::vector<std::pair<const char *, std::vector<double>>>
        sets = {
            {"{+/-5, +/-6}", {-5, 5, -6, 6}},
            {"{+/-3, +/-5}", {-3, 3, -5, 5}},
            {"{+/-3, +/-6}", {-3, 3, -6, 6}},
        };

    TextTable t("Table IX - FP3 special-value set ablation "
                "(proxy perplexity)");
    std::vector<std::string> header = {"Special values"};
    for (const auto &name : models) {
        header.push_back(name + " W");
        header.push_back(name + " C4");
    }
    t.setHeader(header);

    for (const auto &[label, values] : sets) {
        std::vector<std::string> cells = {label};
        for (auto &ctx : ctxs) {
            QuantConfig qc;
            qc.dtype = dtypes::bitmodFp3Custom(values, label);
            const double loss = ctx.rtnLoss(qc);
            cells.push_back(TextTable::num(ctx.pplWiki(loss), 2));
            cells.push_back(TextTable::num(ctx.pplC4(loss), 2));
        }
        t.addRow(cells);
    }
    t.addNote("paper Table IX: the adopted {+/-3, +/-6} set achieves "
              "the lowest average perplexity");
    t.print();
    return 0;
}
