/**
 * @file
 * Request-level serving sweep: arrival rate x datatype x scheduler on
 * the continuous-batching serving simulator (DeployRequest with
 * ServingParams attached).
 *
 * Per configuration the bench (1) calibrates capacity with a
 * closed-loop burst run, (2) derives p99 SLO budgets from an unloaded
 * single-request run (5x TTFT, 3x TPOT), (3) sweeps Poisson arrival
 * rates at fixed fractions of capacity and records the TTFT/TPOT/e2e
 * percentiles, and (4) reports the max swept rate whose p99 TTFT and
 * TPOT both meet the budget — the throughput-vs-SLO view.  The whole
 * sweep is run twice, sharded across the worker pool and serially,
 * and the two must agree bit for bit (the serving_determinism gate).
 *
 * --out emits BENCH_serving.json for the CI perf gate (*_ms latencies
 * fail on >10% growth, *_sustainable_rate on >10% drop); --smoke
 * shrinks the request count for the ctest bench_smoke label.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/parallel.hh"
#include "common/table.hh"
#include "core/bitmod_api.hh"

using namespace bitmod;

namespace
{

/** Load fractions of calibrated capacity each config is swept at. */
constexpr double kLoads[] = {0.3, 0.6, 0.9, 1.05, 1.2};
constexpr const char *kLoadLabels[] = {"load30", "load60", "load90",
                                       "load105", "load120"};
constexpr size_t kNumLoads = sizeof(kLoads) / sizeof(kLoads[0]);

/** One (datatype, scheduler) configuration of the sweep. */
struct ServeConfig
{
    const char *label;  //!< JSON section stem, e.g. "bitmod_ll"
    const char *accel;
    Policy policy;
    SchedulerKind scheduler;
};

/** Everything one configuration contributes to the artifact. */
struct ConfigResult
{
    ServeConfig cfg;
    double capacityRps = 0.0;
    double sloTtftBudgetMs = 0.0;
    double sloTpotBudgetMs = 0.0;
    double maxSustainableRate = 0.0;
    /** Per-load reports, kLoads order. */
    std::vector<ServingReport> loads;
};

/** Request-shape knobs shared by every run of the sweep. */
ServingParams
baseParams(const ServeConfig &cfg, bool smoke)
{
    ServingParams p;
    p.seed = 0x5e221e5;
    p.numRequests = smoke ? 12 : 48;
    // Ragged prompts + a prefill budget: the knobs that make the
    // scheduler policies genuinely diverge (shortest-prompt-first
    // packs more prefills per step than arrival order).
    p.inTokens = 16;
    p.inTokensMax = 48;
    p.outTokens = 32;
    p.prefillTokenBudget = 64;
    p.maxQueueDepth = 8;
    p.scheduler = cfg.scheduler;
    return p;
}

ServingReport
runServing(const ServeConfig &cfg, const std::string &model,
           const ServingParams &params)
{
    const auto summary = simulateDeployment(
        DeployRequest(cfg.accel, model)
            .with(cfg.policy)
            .withServing(params));
    return *summary.serving;
}

/** The full calibrate + sweep pipeline for one configuration. */
ConfigResult
runConfig(const ServeConfig &cfg, const std::string &model, bool smoke)
{
    ConfigResult r;
    r.cfg = cfg;

    // Unloaded latency floor + closed-loop burst capacity, via the
    // shared calibration helper (same two runs as before, verbatim).
    const benchutil::ServingCalibration cal =
        benchutil::calibrateServing(
            baseParams(cfg, smoke), [&](const ServingParams &p) {
                return runServing(cfg, model, p);
            });
    r.sloTtftBudgetMs = cal.sloTtftBudgetMs;
    r.sloTpotBudgetMs = cal.sloTpotBudgetMs;
    r.capacityRps = cal.capacityRps;

    for (size_t li = 0; li < kNumLoads; ++li) {
        ServingParams p = baseParams(cfg, smoke);
        p.arrivalRatePerSec = kLoads[li] * r.capacityRps;
        const ServingReport rep = runServing(cfg, model, p);
        const bool underSlo = rep.ttftMs.p99 <= r.sloTtftBudgetMs &&
                              rep.tpotMs.p99 <= r.sloTpotBudgetMs;
        if (underSlo && p.arrivalRatePerSec > r.maxSustainableRate)
            r.maxSustainableRate = p.arrivalRatePerSec;
        r.loads.push_back(rep);
    }
    return r;
}

/** Bitwise equality of the fields the artifact is built from. */
bool
sameReport(const ServingReport &a, const ServingReport &b)
{
    return a.ttftMs.p50 == b.ttftMs.p50 &&
           a.ttftMs.p99 == b.ttftMs.p99 &&
           a.tpotMs.p99 == b.tpotMs.p99 &&
           a.e2eMs.p50 == b.e2eMs.p50 &&
           a.e2eMs.p99 == b.e2eMs.p99 &&
           a.completed == b.completed &&
           a.rejected == b.rejected && a.steps == b.steps &&
           a.achievedRps == b.achievedRps &&
           a.totalCycles == b.totalCycles &&
           a.energy.totalNj() == b.energy.totalNj();
}

bool
sameConfigResult(const ConfigResult &a, const ConfigResult &b)
{
    if (a.capacityRps != b.capacityRps ||
        a.sloTtftBudgetMs != b.sloTtftBudgetMs ||
        a.sloTpotBudgetMs != b.sloTpotBudgetMs ||
        a.maxSustainableRate != b.maxSustainableRate ||
        a.loads.size() != b.loads.size())
        return false;
    for (size_t i = 0; i < a.loads.size(); ++i)
        if (!sameReport(a.loads[i], b.loads[i]))
            return false;
    return true;
}

void
writeJson(const std::string &path,
          const std::vector<ConfigResult> &results, bool deterministic,
          int threads)
{
    FILE *f = benchutil::openBenchJson(path);
    std::fprintf(f, "{\n  \"bench\": \"serving_sweep\",\n");
    for (const ConfigResult &r : results) {
        std::fprintf(f, "  \"serving_%s_%s\": {\n", r.cfg.label,
                     schedulerName(r.cfg.scheduler));
        std::fprintf(f,
                     "    \"capacity_rps\": %.4f, "
                     "\"slo_ttft_budget\": %.4f, "
                     "\"slo_tpot_budget\": %.4f,\n",
                     r.capacityRps, r.sloTtftBudgetMs,
                     r.sloTpotBudgetMs);
        for (size_t li = 0; li < r.loads.size(); ++li) {
            const ServingReport &rep = r.loads[li];
            std::fprintf(f,
                         "    \"%s_ttft_p99_ms\": %.4f, "
                         "\"%s_tpot_p99_ms\": %.4f, "
                         "\"%s_e2e_p50_ms\": %.4f,\n",
                         kLoadLabels[li], rep.ttftMs.p99,
                         kLoadLabels[li], rep.tpotMs.p99,
                         kLoadLabels[li], rep.e2eMs.p50);
        }
        std::fprintf(f, "    \"max_sustainable_rate\": %.4f\n  },\n",
                     r.maxSustainableRate);
    }
    std::fprintf(f,
                 "  \"serving_determinism\": {\"threads\": %d, "
                 "\"bit_identical\": %s}\n}\n",
                 threads, deterministic ? "true" : "false");
    std::fclose(f);
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    int threads = 0;
    std::string out;
    std::string model = "Llama-2-7B";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--out" && i + 1 < argc) {
            out = argv[++i];
        } else if (arg == "--model" && i + 1 < argc) {
            model = argv[++i];
        } else if (arg == "--threads" && i + 1 < argc) {
            threads = std::atoi(argv[++i]);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] [--model NAME] "
                         "[--threads N] [--out FILE]\n",
                         argv[0]);
            return 1;
        }
    }

    const std::vector<ServeConfig> configs = {
        {"fp16", "Baseline-FP16", Policy::Lossless,
         SchedulerKind::Fcfs},
        {"bitmod_ll", "BitMoD", Policy::Lossless, SchedulerKind::Fcfs},
        {"bitmod_ll", "BitMoD", Policy::Lossless,
         SchedulerKind::LargestBatchFirst},
        {"bitmod_ll", "BitMoD", Policy::Lossless,
         SchedulerKind::AdmissionControl},
        {"bitmod_ly", "BitMoD", Policy::Lossy, SchedulerKind::Fcfs},
        {"bitmod_ly", "BitMoD", Policy::Lossy,
         SchedulerKind::LargestBatchFirst},
        {"bitmod_ly", "BitMoD", Policy::Lossy,
         SchedulerKind::AdmissionControl},
    };

    // Sharded pass: every configuration on the worker pool.
    // --threads pins the pool width (CI runs a 2-point matrix); the
    // default of 0 picks the hardware concurrency.
    std::vector<ConfigResult> results(configs.size());
    WorkerPool pool(threads);
    pool.parallelFor(configs.size(), [&](size_t i) {
        results[i] = runConfig(configs[i], model, smoke);
    });
    // ...then a serial re-run; the serving engine is seeded and
    // single-threaded inside, so the two must agree bit for bit.
    bool deterministic = true;
    for (size_t i = 0; i < configs.size(); ++i)
        if (!sameConfigResult(results[i],
                              runConfig(configs[i], model, smoke)))
            deterministic = false;

    TextTable t("Serving sweep - " + model +
                " (rate x datatype x scheduler, " +
                (smoke ? "12" : "48") + " requests per point)");
    t.setHeader({"Config", "Sched", "Cap req/s", "Load", "TTFT p99",
                 "TPOT p99", "e2e p50", "req/s", "occ"});
    for (const ConfigResult &r : results) {
        for (size_t li = 0; li < r.loads.size(); ++li) {
            const ServingReport &rep = r.loads[li];
            t.addRow({r.cfg.label, schedulerName(r.cfg.scheduler),
                      TextTable::num(r.capacityRps, 2),
                      kLoadLabels[li],
                      TextTable::num(rep.ttftMs.p99, 1),
                      TextTable::num(rep.tpotMs.p99, 2),
                      TextTable::num(rep.e2eMs.p50, 1),
                      TextTable::num(rep.achievedRps, 2),
                      TextTable::num(rep.meanBatchOccupancy, 1)});
        }
        t.addSeparator();
    }
    t.addNote("SLO budgets: 5x unloaded TTFT p50, 3x unloaded TPOT "
              "p50; max_sustainable_rate = highest swept rate with "
              "p99 TTFT and TPOT both under budget");
    t.addNote(std::string("thread-count determinism (pool of ") +
              std::to_string(pool.threadCount()) + " vs serial): " +
              (deterministic ? "bit-identical" : "MISMATCH"));
    for (const ConfigResult &r : results)
        t.addNote(std::string(r.cfg.label) + "/" +
                  schedulerName(r.cfg.scheduler) +
                  " max sustainable rate: " +
                  TextTable::num(r.maxSustainableRate, 2) + " req/s");
    t.print();

    if (!out.empty())
        writeJson(out, results, deterministic, pool.threadCount());
    if (!deterministic) {
        std::fprintf(stderr, "serving sweep: thread-count "
                             "determinism violated\n");
        return 2;
    }
    return 0;
}
