/**
 * @file
 * Table I reproduction: Wikitext-2 proxy perplexity for 4-bit
 * datatypes at per-channel (PC) vs per-group (PG, group 128)
 * granularity.  The paper's observations: PG beats PC everywhere;
 * Flint never wins at PG; INT4-Asym and FP4 split the PG wins.
 */

#include "bench_util.hh"

using namespace bitmod;

int
main()
{
    SampleConfig cfg = rtnSweepConfig();
    cfg.maxCols = 4096;  // realistic channel length matters for PC
    benchutil::banner("tab01", cfg);

    struct Row
    {
        const char *label;
        Dtype dtype;
    };
    const std::vector<Row> rows = {
        {"INT4-Sym", dtypes::intSym(4)},
        {"INT4-Asym", dtypes::intAsym(4)},
        {"FP4", dtypes::fp4()},
        {"Flint", dtypes::flint(4)},
    };

    TextTable t("Table I - Wikitext-2 proxy perplexity, PC vs PG "
                "(group 128)");
    std::vector<std::string> header = {"Datatype"};
    for (const auto &name : benchutil::motivationModels()) {
        header.push_back(name + " PC");
        header.push_back(name + " PG");
    }
    t.setHeader(header);

    // FP16 reference row.
    std::vector<std::string> fp16Row = {"FP16"};
    for (const auto &name : benchutil::motivationModels()) {
        const auto &m = llmByName(name);
        fp16Row.push_back(TextTable::num(m.anchors.fp16PplWiki, 2));
        fp16Row.push_back(TextTable::num(m.anchors.fp16PplWiki, 2));
    }
    t.addRow(fp16Row);
    t.addSeparator();

    for (const auto &row : rows) {
        std::vector<std::string> cells = {row.label};
        for (const auto &name : benchutil::motivationModels()) {
            ModelEvalContext ctx(llmByName(name), cfg);
            QuantConfig qc;
            qc.dtype = row.dtype;
            qc.granularity = Granularity::PerChannel;
            cells.push_back(
                TextTable::num(ctx.pplWiki(ctx.rtnLoss(qc)), 2));
            qc.granularity = Granularity::PerGroup;
            cells.push_back(
                TextTable::num(ctx.pplWiki(ctx.rtnLoss(qc)), 2));
        }
        t.addRow(cells);
    }
    t.addNote("paper Table I: PG < PC for all datatypes; Flint never "
              "best at PG");
    t.print();
    return 0;
}
