/**
 * @file
 * Design-choice ablation (DESIGN.md section 5): the group size.  The
 * paper fixes G = 128 "to balance accuracy and memory overhead"; this
 * bench sweeps G and shows both sides of the trade — proxy perplexity
 * rises with G while stored bits/weight fall — and why 128 is the
 * knee for BitMoD's 10-bit metadata.
 */

#include "bench_util.hh"
#include "quant/quantizer.hh"

using namespace bitmod;

int
main()
{
    SampleConfig cfg = rtnSweepConfig();
    benchutil::banner("abl_group_size", cfg);

    TextTable t("Ablation - group size (BitMoD-FP3, 8-bit scale "
                "factors)");
    std::vector<std::string> header = {"Group", "bits/weight"};
    for (const auto &name : benchutil::llamaModels())
        header.push_back(name + " Wiki");
    t.setHeader(header);

    std::vector<ModelEvalContext> ctxs;
    for (const auto &name : benchutil::llamaModels())
        ctxs.emplace_back(llmByName(name), cfg);

    for (const int g : {32, 64, 128, 256, 512}) {
        QuantConfig qc;
        qc.dtype = dtypes::bitmodFp3();
        qc.groupSize = g;
        qc.scaleBits = 8;
        std::vector<std::string> cells = {
            std::to_string(g),
            TextTable::num(bitsPerWeight(qc, 4096), 3)};
        for (auto &ctx : ctxs)
            cells.push_back(
                TextTable::num(ctx.pplWiki(ctx.rtnLoss(qc)), 2));
        t.addRow(cells);
    }
    t.addNote("smaller groups: lower error, more metadata; G=128 "
              "keeps overhead at 0.08 bits/weight (paper Section "
              "III-C) with most of the accuracy");
    t.print();
    return 0;
}
