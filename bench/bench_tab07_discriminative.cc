/**
 * @file
 * Table VII reproduction: zero-shot proxy accuracy (HellaSwag /
 * WinoGrande / Piqa) of per-group INT-Asym vs BitMoD at 4-bit and
 * 3-bit weight precision across the six LLMs, with mean accuracy
 * deltas against FP16.
 */

#include "bench_util.hh"

using namespace bitmod;

int
main()
{
    const SampleConfig cfg = rtnSweepConfig();
    benchutil::banner("tab07", cfg);

    std::vector<ModelEvalContext> ctxs;
    for (const auto &name : benchutil::allModels())
        ctxs.emplace_back(llmByName(name), cfg);

    const char *tasks[3] = {"Hella", "Wino", "Piqa"};

    TextTable t("Table VII - zero-shot proxy accuracy (per-group)");
    std::vector<std::string> header = {"Prec", "Datatype", "Model"};
    for (const char *task : tasks)
        header.push_back(task);
    t.setHeader(header);

    const auto emit = [&](const char *prec, const char *label,
                          const Dtype &dtype, double *mean_delta) {
        double deltaSum = 0.0;
        int count = 0;
        for (auto &ctx : ctxs) {
            QuantConfig qc;
            qc.dtype = dtype;
            const double loss = ctx.rtnLoss(qc);
            std::vector<std::string> cells = {prec, label,
                                              ctx.spec().name};
            for (int task = 0; task < 3; ++task) {
                const double acc = ctx.accuracy(task, loss);
                cells.push_back(TextTable::num(acc, 2));
                deltaSum += acc - ctx.spec().anchors.fp16Acc[task];
                ++count;
            }
            t.addRow(cells);
        }
        *mean_delta = deltaSum / count;
        t.addSeparator();
    };

    double dInt4 = 0, dBm4 = 0, dInt3 = 0, dBm3 = 0;
    emit("4b", "INT4-Asym", dtypes::intAsym(4), &dInt4);
    emit("4b", "BitMoD", dtypes::bitmodFp4(), &dBm4);
    emit("3b", "INT3-Asym", dtypes::intAsym(3), &dInt3);
    emit("3b", "BitMoD", dtypes::bitmodFp3(), &dBm3);

    t.addNote("mean dAcc: INT4-Asym " + TextTable::num(dInt4, 2) +
              " | BitMoD-4b " + TextTable::num(dBm4, 2) +
              " | INT3-Asym " + TextTable::num(dInt3, 2) +
              " | BitMoD-3b " + TextTable::num(dBm3, 2));
    t.addNote("paper Table VII: BitMoD-4b within 0.5 points of FP16 "
              "and ~2.2 points above INT3-Asym at 3-bit");
    t.print();
    return 0;
}
