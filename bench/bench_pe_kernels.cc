/**
 * @file
 * Google-benchmark microbenchmarks of the hot kernels: Booth / LOD
 * term generation, BitMoD PE group processing (exact and hardware-
 * rounding modes), bit-serial dequantization, Algorithm 1 adaptive
 * group quantization, and full-matrix quantization throughput.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "bitserial/termgen.hh"
#include "common/rng.hh"
#include "pe/bitmod_pe.hh"
#include "quant/dtype.hh"
#include "quant/quantizer.hh"
#include "tensor/generator.hh"

namespace bitmod
{
namespace
{

void
BM_BoothTermGen(benchmark::State &state)
{
    int v = -128;
    for (auto _ : state) {
        benchmark::DoNotOptimize(termsForInt(v, 8));
        v = v == 127 ? -128 : v + 1;
    }
}
BENCHMARK(BM_BoothTermGen);

void
BM_FixedPointTermGen(benchmark::State &state)
{
    const double values[] = {0.5, 1.5, 3, 6, -5, 8};
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(termsForFixedPoint(values[i % 6]));
        ++i;
    }
}
BENCHMARK(BM_FixedPointTermGen);

void
BM_BitSerialDequant(benchmark::State &state)
{
    int cycles = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            bitSerialDequant(1.2345, 173, 8, &cycles));
}
BENCHMARK(BM_BitSerialDequant);

void
BM_EncodeGroupAdaptive(benchmark::State &state)
{
    Rng rng(1);
    std::vector<float> w(128);
    for (auto &x : w)
        x = static_cast<float>(rng.gaussian(0.0, 0.02));
    QuantConfig cfg;
    cfg.dtype = state.range(0) == 3 ? dtypes::bitmodFp3()
                                    : dtypes::bitmodFp4();
    for (auto _ : state)
        benchmark::DoNotOptimize(encodeGroup({w.data(), w.size()}, cfg));
    state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_EncodeGroupAdaptive)->Arg(3)->Arg(4);

void
BM_PeProcessGroup(benchmark::State &state)
{
    Rng rng(2);
    std::vector<float> w(128);
    for (auto &x : w)
        x = static_cast<float>(rng.gaussian(0.0, 0.02));
    QuantConfig cfg;
    cfg.dtype = dtypes::bitmodFp4();
    const auto enc = encodeGroup({w.data(), w.size()}, cfg);
    std::vector<Float16> acts;
    for (int i = 0; i < 128; ++i)
        acts.emplace_back(static_cast<float>(rng.gaussian()));
    PeConfig pc;
    pc.hwRounding = state.range(0) != 0;
    const BitmodPe pe(pc);
    for (auto _ : state)
        benchmark::DoNotOptimize(pe.processGroup(
            enc, {acts.data(), acts.size()}, cfg.dtype, 100, 1e-4));
    state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_PeProcessGroup)->Arg(0)->Arg(1);

void
BM_QuantizeMatrix(benchmark::State &state)
{
    Rng rng(3);
    WeightGenParams p;
    const Matrix w = generateWeights(64, 1024, p, rng);
    QuantConfig cfg;
    cfg.dtype = state.range(0) == 0 ? dtypes::intAsym(4)
                                    : dtypes::bitmodFp4();
    cfg.scaleBits = 8;
    for (auto _ : state)
        benchmark::DoNotOptimize(quantizeMatrix(w, cfg));
    state.SetItemsProcessed(state.iterations() * w.size());
}
BENCHMARK(BM_QuantizeMatrix)->Arg(0)->Arg(1);

} // namespace
} // namespace bitmod

BENCHMARK_MAIN();
