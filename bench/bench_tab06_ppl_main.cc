/**
 * @file
 * Table VI reproduction — the paper's headline quality table:
 * Wikitext-2 and C4 proxy perplexity of ANT (Flint), OliVe, MX,
 * INT-Asym and BitMoD at 4-bit and 3-bit weight precision under
 * per-group quantization, across all six LLMs, with the mean
 * perplexity delta against FP16.
 */

#include "bench_util.hh"

using namespace bitmod;

int
main()
{
    const SampleConfig cfg = rtnSweepConfig();
    benchutil::banner("tab06", cfg);

    std::vector<ModelEvalContext> ctxs;
    for (const auto &name : benchutil::allModels())
        ctxs.emplace_back(llmByName(name), cfg);

    TextTable t("Table VI - proxy perplexity, per-group weight "
                "quantization");
    std::vector<std::string> header = {"Prec", "Datatype"};
    for (const auto &name : benchutil::allModels()) {
        header.push_back(name + " W");
        header.push_back(name + " C4");
    }
    header.push_back("mean dPPL");
    t.setHeader(header);

    // FP16 row.
    std::vector<std::string> fp16Row = {"16b", "FP16"};
    for (const auto &ctx : ctxs) {
        fp16Row.push_back(
            TextTable::num(ctx.spec().anchors.fp16PplWiki, 2));
        fp16Row.push_back(
            TextTable::num(ctx.spec().anchors.fp16PplC4, 2));
    }
    fp16Row.push_back("0");
    t.addRow(fp16Row);
    t.addSeparator();

    const auto emit = [&](const char *prec, const char *label,
                          const Dtype &dtype) {
        std::vector<std::string> cells = {prec, label};
        double deltaSum = 0.0;
        int deltaCount = 0;
        for (auto &ctx : ctxs) {
            QuantConfig qc;
            qc.dtype = dtype;
            const double loss = ctx.rtnLoss(qc);
            const double wiki = ctx.pplWiki(loss);
            const double c4 = ctx.pplC4(loss);
            cells.push_back(TextTable::num(wiki, 2));
            cells.push_back(TextTable::num(c4, 2));
            deltaSum += (wiki - ctx.spec().anchors.fp16PplWiki) +
                        (c4 - ctx.spec().anchors.fp16PplC4);
            deltaCount += 2;
        }
        cells.push_back(TextTable::num(deltaSum / deltaCount, 2));
        t.addRow(cells);
    };

    emit("4b", "ANT(Flint)", dtypes::flint(4));
    emit("4b", "OliVe", dtypes::olive(4));
    emit("4b", "MX-FP4", dtypes::mxfp(4));
    emit("4b", "INT4-Asym", dtypes::intAsym(4));
    emit("4b", "BitMoD", dtypes::bitmodFp4());
    t.addSeparator();
    emit("3b", "ANT(Flint)", dtypes::flint(3));
    emit("3b", "OliVe", dtypes::olive(3));
    emit("3b", "MX-FP3", dtypes::mxfp(3));
    emit("3b", "INT3-Asym", dtypes::intAsym(3));
    emit("3b", "BitMoD", dtypes::bitmodFp3());

    t.addNote("paper Table VI: BitMoD best at both precisions; the "
              "INT3-Asym rows are the proxy anchors (exact by "
              "construction); MX uses group 32, others group 128");
    t.print();
    return 0;
}
