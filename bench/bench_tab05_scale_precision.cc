/**
 * @file
 * Table V reproduction: proxy perplexity as the per-group scale
 * factors are quantized to INT8/6/4/2 (VS-Quant second level) with
 * INT4-Asym weights at group 128.  The paper's conclusion — INT8
 * scale factors are lossless — is what licenses the 8-cycle bit-serial
 * dequantization unit.
 */

#include "bench_util.hh"

using namespace bitmod;

int
main()
{
    const SampleConfig cfg = rtnSweepConfig();
    benchutil::banner("tab05", cfg);

    TextTable t("Table V - scale-factor precision sweep (INT4-Asym "
                "weights, group 128)");
    std::vector<std::string> header = {"SF bits"};
    for (const auto &name : benchutil::motivationModels()) {
        header.push_back(name + " Wiki");
        header.push_back(name + " C4");
    }
    t.setHeader(header);

    std::vector<ModelEvalContext> ctxs;
    for (const auto &name : benchutil::motivationModels())
        ctxs.emplace_back(llmByName(name), cfg);

    for (const int sfBits : {0, 8, 6, 4, 2}) {
        std::vector<std::string> cells = {
            sfBits == 0 ? "FP16" : "INT" + std::to_string(sfBits)};
        for (auto &ctx : ctxs) {
            QuantConfig qc;
            qc.dtype = dtypes::intAsym(4);
            qc.scaleBits = sfBits;
            const double loss = ctx.rtnLoss(qc);
            cells.push_back(TextTable::num(ctx.pplWiki(loss), 2));
            cells.push_back(TextTable::num(ctx.pplC4(loss), 2));
        }
        t.addRow(cells);
    }
    t.addNote("paper Table V: INT8 == FP16 scale factors; INT2 "
              "degrades clearly");
    t.print();
    return 0;
}
