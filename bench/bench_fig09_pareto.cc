/**
 * @file
 * Fig. 9 reproduction: Wikitext-2 proxy perplexity vs normalized
 * energy-delay product (EDP) for Phi-2B and Llama-2-7B on generative
 * tasks.  BitMoD points span INT8/INT6/INT5 (Booth bit-serial) and
 * the 4-/3-bit BitMoD-FP mixtures; ANT and OliVe points span their
 * 8-bit and per-channel 4-bit modes.  BitMoD should trace the Pareto
 * frontier (lower-left).
 */

#include <limits>

#include "accel/policy.hh"
#include "bench_util.hh"
#include "core/bitmod_api.hh"

using namespace bitmod;

namespace
{

struct Point
{
    std::string accel;
    std::string config;
    double ppl;
    double edp;
};

} // namespace

int
main()
{
    const SampleConfig cfg = rtnSweepConfig();
    benchutil::banner("fig09", cfg);

    for (const char *name : {"Phi-2B", "Llama-2-7B"}) {
        const auto &model = llmByName(name);
        ModelEvalContext ctx(model, cfg);
        const TaskSpec task = TaskSpec::generative();

        // Baseline EDP for normalization.
        const AccelSim baseSim(makeFp16Baseline());
        const double baseEdp =
            baseSim.run(model, task, PrecisionChoice::fp16()).edp(1.0);

        std::vector<Point> points;

        // BitMoD precision ladder.
        const AccelSim bmSim(makeBitmod());
        for (const auto &[label, dtype] :
             std::vector<std::pair<const char *, Dtype>>{
                 {"INT8", dtypes::intSym(8)},
                 {"6-bit", dtypes::intSym(6)},
                 {"5-bit", dtypes::intSym(5)},
                 {"4-bit", dtypes::bitmodFp4()},
                 {"3-bit", dtypes::bitmodFp3()}}) {
            QuantConfig qc;
            qc.dtype = dtype;
            qc.scaleBits = 8;
            const double ppl = ctx.pplWiki(ctx.rtnLoss(qc));
            const auto r =
                bmSim.run(model, task, PrecisionChoice::bitmod(dtype));
            points.push_back(
                {"BitMoD", label, ppl, r.edp(1.0) / baseEdp});
        }

        // ANT / OliVe per-channel ladder (their hardware granularity).
        for (const auto &[accelName, w4] :
             std::vector<std::pair<const char *, Dtype>>{
                 {"ANT", dtypes::flint(4)},
                 {"OliVe", dtypes::olive(4)}}) {
            const AccelSim sim(accelByName(accelName));
            for (const auto &[label, dtype] :
                 std::vector<std::pair<const char *, Dtype>>{
                     {"INT8", dtypes::intSym(8)}, {"4-bit", w4}}) {
                QuantConfig qc;
                qc.dtype = dtype;
                qc.granularity = Granularity::PerChannel;
                // OliVe protects a ~6% fraction of each extent; lift
                // the per-group default cap so long channels keep the
                // proportional budget (the fraction itself is the
                // quantizer default).
                qc.oliveMaxOutliers =
                    std::numeric_limits<int>::max();
                const double ppl = ctx.pplWiki(ctx.rtnLoss(qc));
                const auto r = sim.run(
                    model, task, PrecisionChoice::perChannel(dtype));
                points.push_back(
                    {accelName, label, ppl, r.edp(1.0) / baseEdp});
            }
        }

        TextTable t(std::string("Fig. 9 - ") + name +
                    " perplexity-EDP points (EDP normalized to "
                    "FP16 baseline)");
        t.setHeader({"Accelerator", "Precision", "proxy PPL",
                     "norm EDP", "Pareto"});
        // Pareto check: a point is on the frontier if no other point
        // is better in both axes.
        for (const auto &p : points) {
            bool dominated = false;
            for (const auto &q : points)
                if (q.ppl < p.ppl - 1e-9 && q.edp < p.edp - 1e-9)
                    dominated = true;
            t.addRow({p.accel, p.config, TextTable::num(p.ppl, 2),
                      TextTable::num(p.edp, 4),
                      dominated ? "" : "frontier"});
        }
        t.addNote("paper Fig. 9: BitMoD always sits on the Pareto "
                  "frontier");
        t.print();
    }
    return 0;
}
