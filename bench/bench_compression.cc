/**
 * @file
 * Memory-controller compression bench: runs the real LZ4-style block
 * compressor (and the CRC/SECDED protection stage it composes with)
 * over actual packed weight images, INT8 KV pages and FP16 activation
 * bursts, and reports *measured* ratios and costs — which datatypes
 * leave residual entropy on the table is an empirical result here,
 * not an assumption.
 *
 * Sections of BENCH_compression.json (CI perf-gate families):
 *
 *  - weight_streams: per-datatype compression ratio on the packed
 *    DRAM image at 256 B bursts (`*_ratio`, gated higher-better —
 *    raw bytes / stored bytes, stored = payload + sideband).
 *  - burst_sweep: the fp4 image at 64 / 256 / 4096 B bursts
 *    (`b*_ratio`) — the match-window-vs-latency axis.
 *  - kv_act_streams: INT8 KV pages and FP16 activation bursts
 *    (`kv_ratio`, `act_ratio`).
 *  - composition: compress-then-protect pipelines (`*_overhead` =
 *    sideband / payload, gated lower-better; `lz4_crc_ratio` for the
 *    composed stored ratio).
 *  - throughput: host (de)compression speed in bytes/s
 *    (`lz4_compress_wps`, `lz4_decompress_wps`).
 *  - end_to_end: the measured CompressionModel charged through
 *    simulateDeployment — one-shot decode, serving TPOT and a TP=2
 *    sharded fleet all see the effective bandwidth; `bit_identical`
 *    asserts the compression-off path reproduces the pre-controller
 *    numbers exactly.
 *
 * Every burst is round-trip verified byte-exact; any invariant
 * violation exits non-zero.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/bitmod_api.hh"
#include "common/rng.hh"
#include "mem/compress.hh"
#include "mem/mem_controller.hh"
#include "model/llm_zoo.hh"
#include "numeric/float16.hh"
#include "quant/dtype.hh"
#include "quant/packing.hh"
#include "quant/quantizer.hh"
#include "tensor/generator.hh"

using namespace bitmod;

namespace
{

int gFailures = 0;

void
invariant(bool ok, const char *what)
{
    if (!ok) {
        std::fprintf(stderr, "INVARIANT FAILED: %s\n", what);
        ++gFailures;
    }
}

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

struct BenchCase
{
    const char *key;
    Dtype dt;
};

std::vector<BenchCase>
benchCases()
{
    return {{"fp4", dtypes::bitmodFp4()},
            {"fp3", dtypes::bitmodFp3()},
            {"int4", dtypes::intSym(4)},
            {"olive4", dtypes::olive(4)}};
}

/** Quantize + pack one synthetic weight matrix (the DRAM image). */
PackedMatrix
packImage(const Dtype &dt, size_t rows, size_t cols, Rng &rng)
{
    QuantConfig cfg;
    cfg.dtype = dt;
    cfg.groupSize = 64;
    cfg.scaleBits = 8;
    cfg.captureEncoding = true;
    Matrix w(rows, cols);
    for (float &x : w.flat())
        x = static_cast<float>(rng.gaussian(0.0, 0.02));
    for (float &x : w.flat())
        if (rng.uniform() < 0.04)
            x *= static_cast<float>(20.0 + 40.0 * rng.uniform());
    const auto q = quantizeMatrix(w, cfg);
    return GroupPacker(cfg).packMatrix(q.encoded);
}

/** INT8 KV page: per-token symmetric quantization of real
 *  activation-shaped tensors (persistent massive channels included —
 *  exactly what makes KV pages the big residual-entropy target). */
std::vector<uint8_t>
kvPageBytes(size_t tokens, size_t dim, Rng &rng)
{
    ActivationGenParams ap;
    const Matrix acts = generateActivations(tokens, dim, ap, rng);
    std::vector<uint8_t> bytes;
    bytes.reserve(tokens * dim);
    for (size_t t = 0; t < tokens; ++t) {
        float mx = 1e-12f;
        for (size_t c = 0; c < dim; ++c)
            mx = std::max(mx, std::fabs(acts(t, c)));
        const float scale = mx / 127.0f;
        for (size_t c = 0; c < dim; ++c)
            bytes.push_back(static_cast<uint8_t>(static_cast<int8_t>(
                std::lrintf(acts(t, c) / scale))));
    }
    return bytes;
}

/** FP16 activation burst stream (residual-stream layer I/O). */
std::vector<uint8_t>
activationBytes(size_t tokens, size_t dim, Rng &rng)
{
    ActivationGenParams ap;
    const Matrix acts = generateActivations(tokens, dim, ap, rng);
    std::vector<uint8_t> bytes;
    bytes.reserve(tokens * dim * 2);
    for (size_t t = 0; t < tokens; ++t)
        for (size_t c = 0; c < dim; ++c) {
            const uint16_t h = Float16(acts(t, c)).bits();
            bytes.push_back(static_cast<uint8_t>(h & 0xff));
            bytes.push_back(static_cast<uint8_t>(h >> 8));
        }
    return bytes;
}

MemControllerConfig
lz4Config(size_t burst)
{
    MemControllerConfig cfg;
    cfg.compressor = CompressorKind::Lz4;
    cfg.protection.scheme = ProtectionScheme::None;
    cfg.burstBytes = burst;
    return cfg;
}

StreamStats
measure(const MemControllerConfig &cfg, std::span<const uint8_t> raw,
        const char *what)
{
    const StreamStats s = MemController(cfg).processStream(raw);
    invariant(s.roundTripOk, what);
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string out = "BENCH_compression.json";
    uint64_t seed = 0xC0117E55ULL;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke")
            smoke = true;
        else if (arg == "--out" && i + 1 < argc)
            out = argv[++i];
        else if (arg == "--seed" && i + 1 < argc)
            seed = std::strtoull(argv[++i], nullptr, 16);
        else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] [--seed HEX] "
                         "[--out FILE]\n",
                         argv[0]);
            return 2;
        }
    }

    const size_t rows = smoke ? 16 : 64;
    const size_t cols = smoke ? 256 : 1024;
    Rng rng(seed);

    // -- weight streams per datatype ---------------------------------
    std::printf("weight streams (%zux%zu, 256 B bursts):\n", rows,
                cols);
    const auto cases = benchCases();
    std::vector<StreamStats> weightStats;
    std::vector<PackedMatrix> images;
    for (const BenchCase &bc : cases) {
        images.push_back(packImage(bc.dt, rows, cols, rng));
        weightStats.push_back(measure(lz4Config(256),
                                      images.back().bytes(),
                                      "weight stream round trip"));
        std::printf("  %-7s ratio=%.4f  (%zu -> %zu B)\n", bc.key,
                    weightStats.back().ratio(),
                    weightStats.back().rawBytes,
                    weightStats.back().storedBytes());
    }

    // -- burst-size sweep on the fp4 image ---------------------------
    const size_t bursts[] = {64, 256, 4096};
    const char *burstKeys[] = {"b64", "b256", "b4096"};
    StreamStats burstStats[3];
    std::printf("burst sweep (fp4):\n");
    for (int i = 0; i < 3; ++i) {
        burstStats[i] = measure(lz4Config(bursts[i]),
                                images[0].bytes(),
                                "burst sweep round trip");
        std::printf("  %-6s ratio=%.4f\n", burstKeys[i],
                    burstStats[i].ratio());
    }

    // -- KV pages and activation bursts ------------------------------
    const size_t kvTokens = smoke ? 128 : 512;
    const std::vector<uint8_t> kv = kvPageBytes(kvTokens, 128, rng);
    const std::vector<uint8_t> act =
        activationBytes(kvTokens, 128, rng);
    const StreamStats kvStats =
        measure(lz4Config(256), kv, "kv stream round trip");
    const StreamStats actStats =
        measure(lz4Config(256), act, "activation round trip");
    std::printf("kv ratio=%.4f  act ratio=%.4f\n", kvStats.ratio(),
                actStats.ratio());

    // -- composition: compress-then-protect --------------------------
    MemControllerConfig crcCfg = lz4Config(256);
    crcCfg.protection = {ProtectionScheme::Crc, 64};
    MemControllerConfig secdedCfg = lz4Config(256);
    secdedCfg.protection = {ProtectionScheme::CrcSecded, 64};
    const StreamStats crcStats =
        measure(crcCfg, images[0].bytes(), "lz4+crc round trip");
    const StreamStats secdedStats = measure(
        secdedCfg, images[0].bytes(), "lz4+secded round trip");
    // The sidecar rides the *compressed* payload: its byte count must
    // stay within the per-burst analytic bound for the largest
    // possible payload (burst + 1-byte stored-mode header) —
    // composition order pins this.
    invariant(crcStats.metaBytes <=
                  crcStats.bursts * analyticProtectionBytes(
                                        256 + 1, crcCfg.protection),
              "crc sidecar bounded by analytic per-burst bytes");
    std::printf("composition: lz4+crc overhead=%.4f  "
                "lz4+secded overhead=%.4f\n",
                crcStats.metaOverhead(), secdedStats.metaOverhead());

    // -- host throughput ---------------------------------------------
    const int reps = smoke ? 3 : 20;
    const MemController thrMc{lz4Config(256)};
    double encBytes = 0.0, encSec = 0.0, decSec = 0.0;
    {
        const auto raw = images[0].bytes();
        std::vector<uint8_t> compressed, decoded;
        const auto t0 = std::chrono::steady_clock::now();
        for (int r = 0; r < reps; ++r)
            for (size_t b0 = 0; b0 < raw.size(); b0 += 256)
                lz4Compress(raw.subspan(b0,
                                        std::min<size_t>(
                                            256, raw.size() - b0)),
                            compressed);
        encSec = secondsSince(t0);
        encBytes = static_cast<double>(raw.size()) * reps;
        // Decode timing over the stored stream of every burst.
        std::vector<std::vector<uint8_t>> stored;
        for (size_t b0 = 0; b0 < raw.size(); b0 += 256) {
            lz4Compress(raw.subspan(b0, std::min<size_t>(
                                            256, raw.size() - b0)),
                        compressed);
            stored.push_back(compressed);
        }
        const auto t1 = std::chrono::steady_clock::now();
        for (int r = 0; r < reps; ++r)
            for (const auto &s : stored)
                invariant(lz4Decompress(s, decoded),
                          "timed decode stays valid");
        decSec = secondsSince(t1);
    }
    const double compressWps = encBytes / std::max(encSec, 1e-9);
    const double decompressWps = encBytes / std::max(decSec, 1e-9);
    std::printf("throughput: compress=%.1f MB/s decompress=%.1f MB/s\n",
                compressWps / 1e6, decompressWps / 1e6);

    // -- end to end through the deployment API -----------------------
    const CompressionModel cm = compressionModelFrom(
        lz4Config(256), weightStats[0], actStats, kvStats);
    const DeployRequest base("BitMoD", "Llama-2-7B");
    const DeploymentSummary off = simulateDeployment(base);
    const DeploymentSummary offExplicit = simulateDeployment(
        DeployRequest(base).withCompression(CompressionModel{}));
    const bool bitIdentical =
        off.report.totalCycles() ==
            offExplicit.report.totalCycles() &&
        off.report.energy.totalNj() ==
            offExplicit.report.energy.totalNj() &&
        off.report.traffic.total().total() ==
            offExplicit.report.traffic.total().total();
    invariant(bitIdentical,
              "compression-off deployment is bit-identical");

    const DeploymentSummary on =
        simulateDeployment(DeployRequest(base).withCompression(cm));
    invariant(std::fabs(on.report.traffic.total().weightBytes -
                        cm.weightRatio *
                            off.report.traffic.total().weightBytes) <=
                  1e-6 * off.report.traffic.total().weightBytes,
              "charged weight bytes match the measured ratio");
    const double decodeMemSpeedup =
        off.report.decodeMemCycles /
        std::max(on.report.decodeMemCycles, 1e-9);

    ServingParams sp;
    sp.numRequests = smoke ? 16 : 64;
    sp.arrivalRatePerSec = 200.0;
    const DeploymentSummary serve = simulateDeployment(
        DeployRequest(base).withServing(sp).withCompression(cm));
    invariant(serve.serving.has_value(),
              "serving report present under compression");
    const double servingTpotMs =
        serve.serving ? serve.serving->tpotMs.mean : 0.0;

    const DeploymentSummary tp2 = simulateDeployment(
        DeployRequest(base).withSharding(2).withCompression(cm));
    invariant(tp2.sharding.has_value() &&
                  tp2.precision.compression.enabled,
              "sharded lanes carry the compression view");
    std::printf("end to end: decode_mem_speedup=%.4f  "
                "serving tpot=%.4f ms\n",
                decodeMemSpeedup, servingTpotMs);

    // -- JSON artifact -----------------------------------------------
    FILE *f = std::fopen(out.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", out.c_str());
        return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"compression\",\n");
    std::fprintf(f, "  \"rows\": %zu,\n  \"cols\": %zu,\n", rows,
                 cols);
    std::fprintf(f, "  \"seed\": \"0x%llx\",\n",
                 static_cast<unsigned long long>(seed));
    std::fprintf(f, "  \"weight_streams\": {");
    for (size_t i = 0; i < cases.size(); ++i)
        std::fprintf(f, "%s\"%s_ratio\": %.6f", i ? ", " : "",
                     cases[i].key, weightStats[i].ratio());
    std::fprintf(f, "},\n");
    std::fprintf(f, "  \"burst_sweep\": {");
    for (int i = 0; i < 3; ++i)
        std::fprintf(f, "%s\"%s_ratio\": %.6f", i ? ", " : "",
                     burstKeys[i], burstStats[i].ratio());
    std::fprintf(f, "},\n");
    std::fprintf(f,
                 "  \"kv_act_streams\": {\"kv_ratio\": %.6f, "
                 "\"act_ratio\": %.6f},\n",
                 kvStats.ratio(), actStats.ratio());
    std::fprintf(f,
                 "  \"composition\": {\"lz4_crc_overhead\": %.6f, "
                 "\"lz4_secded_overhead\": %.6f, "
                 "\"lz4_crc_ratio\": %.6f},\n",
                 crcStats.metaOverhead(), secdedStats.metaOverhead(),
                 crcStats.ratio());
    std::fprintf(f,
                 "  \"throughput\": {\"lz4_compress_wps\": %.0f, "
                 "\"lz4_decompress_wps\": %.0f},\n",
                 compressWps, decompressWps);
    std::fprintf(f,
                 "  \"end_to_end\": {\"decode_mem_speedup\": %.6f, "
                 "\"serving_tpot_ms\": %.6f, "
                 "\"bit_identical\": %s}\n",
                 decodeMemSpeedup, servingTpotMs,
                 bitIdentical ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out.c_str());

    if (gFailures) {
        std::fprintf(stderr, "\n%d invariant failure(s)\n",
                     gFailures);
        return 1;
    }
    return 0;
}
