#!/usr/bin/env python3
"""Perf-trajectory gate over the BENCH_*.json artifacts.

Compares every tracked field of the current bench output against the
previous run's artifact and fails (exit 1) on a regression beyond the
threshold.  Eight field families are tracked: *_wps throughputs (lower
is a regression), *_bytes footprints (growth is a regression — the
packed-stream section reports the DRAM-image size, and a silently
fattening memory layout must not ride a green build), the
simulator-level *_speedup / *_eff ratios of BENCH_fig07.json /
BENCH_fig08.json (a drop means the modeled accelerator advantage —
analytic or measured — shrank), the BENCH_fault.json reliability
families: *_coverage error-detection rates (STRICT — any drop beyond
0.1% fails regardless of the threshold, because a quietly shrinking
detection rate is a correctness hole, not a perf tradeoff) and
*_overhead protection-bandwidth ratios (growth beyond the threshold
fails, like a footprint), and the BENCH_serving.json / BENCH_sharding.json families: *_ms
latencies (TTFT/TPOT/e2e percentiles — an increase beyond the
threshold fails, the inverse of a throughput), *_sustainable_rate
max-rates-under-SLO (throughput-like, a drop fails), the
*_efficiency scaling ratios of the sharding sweep (a drop means the
tensor-parallel speedup stopped tracking the degree), and the
BENCH_compression.json *_ratio compression ratios (raw over stored
bytes, so a drop means the memory controller started shipping more
bytes for the same stream — a bandwidth regression).  The delta table
is always printed, regression or not, so the trajectory is visible in
every CI log.  A missing baseline (first run on a branch, expired
artifact) is not an error: the gate prints a note and passes.

Bit-identity flags are also enforced: a section reporting
"bit_identical": false fails the gate regardless of throughput, since
a fast-but-wrong path must never ride a green build.

Usage:
    perf_gate.py --prev PREV.json --curr CURR.json [--max-regression 10]
    perf_gate.py --self-test
"""

import argparse
import json
import sys


# Detection-coverage drops larger than this fail even when they are
# within --max-regression: coverage is a correctness signal.
COVERAGE_EPSILON_PCT = 0.1


def tracked_fields(doc):
    """Yield (section.key, value, higher_is_better, strict) for every
    gated field: *_wps throughputs, *_speedup / *_eff / *_efficiency
    simulator ratios, *_ratio compression ratios,
    *_sustainable_rate serving capacities and *_coverage detection
    rates (higher better; coverage is strict), *_bytes footprints,
    *_overhead protection ratios and *_ms latencies (lower
    better)."""
    for section, body in sorted(doc.items()):
        if isinstance(body, dict):
            for key, value in sorted(body.items()):
                if not isinstance(value, (int, float)):
                    continue
                if key.endswith(("_wps", "_speedup", "_eff",
                                 "_efficiency", "_sustainable_rate",
                                 "_ratio")):
                    yield f"{section}.{key}", float(value), True, False
                elif key.endswith("_coverage"):
                    yield f"{section}.{key}", float(value), True, True
                elif key.endswith(("_bytes", "_overhead", "_ms")):
                    yield f"{section}.{key}", float(value), False, False


def bit_identity_failures(doc):
    return [
        section
        for section, body in sorted(doc.items())
        if isinstance(body, dict) and body.get("bit_identical") is False
    ]


def compare(prev, curr, max_regression_pct):
    """Return (table_rows, regressions, removed).

    Rows: (field, prev, curr, delta%).  A regression is a throughput
    drop or a footprint growth beyond the threshold.  A field present
    in the baseline but missing from the current run lands in
    `removed` — silently dropping a measurement must not pass the
    gate.
    """
    prev_fields = (
        {f: v for f, v, _, _ in tracked_fields(prev)} if prev else {}
    )
    rows, regressions = [], []
    curr_names = set()
    for field, curr_val, higher_better, strict in tracked_fields(curr):
        curr_names.add(field)
        prev_val = prev_fields.get(field)
        if prev_val is None or prev_val <= 0:
            rows.append((field, prev_val, curr_val, None))
            continue
        delta_pct = (curr_val - prev_val) / prev_val * 100.0
        rows.append((field, prev_val, curr_val, delta_pct))
        limit = COVERAGE_EPSILON_PCT if strict else max_regression_pct
        regressed = (delta_pct < -limit if higher_better
                     else delta_pct > limit)
        if regressed:
            regressions.append((field, delta_pct))
    removed = sorted(set(prev_fields) - curr_names)
    return rows, regressions, removed


def fmt_value(v):
    """Counts print as integers; small ratios keep their decimals."""
    return f"{v:,.0f}" if abs(v) >= 1000 else f"{v:.4g}"


def print_table(rows, removed):
    print(f"{'field':<40} {'prev':>14} {'curr':>14} {'delta':>9}")
    print("-" * 80)
    for field, prev_val, curr_val, delta_pct in rows:
        prev_s = fmt_value(prev_val) if prev_val is not None else "(none)"
        delta_s = f"{delta_pct:+.1f}%" if delta_pct is not None else "n/a"
        print(f"{field:<40} {prev_s:>14} {fmt_value(curr_val):>14} "
              f"{delta_s:>9}")
    for field in removed:
        print(f"{field:<40} {'(was set)':>14} {'(removed)':>14} {'!!':>9}")


def run_gate(prev, curr, max_regression_pct):
    """Gate logic on parsed documents; returns the process exit code."""
    broken = bit_identity_failures(curr)
    rows, regressions, removed = compare(prev, curr, max_regression_pct)
    print_table(rows, removed)
    if prev is None:
        print("\nno previous bench artifact: baseline recorded, "
              "gate passes")
    for field, delta_pct in regressions:
        if field.endswith("_bytes"):
            kind, limit = "footprint grew", max_regression_pct
        elif field.endswith("_overhead"):
            kind, limit = "protection overhead grew", max_regression_pct
        elif field.endswith("_ms"):
            kind, limit = "latency grew", max_regression_pct
        elif field.endswith("_coverage"):
            kind, limit = ("detection coverage dropped",
                           COVERAGE_EPSILON_PCT)
        else:
            kind, limit = "dropped", max_regression_pct
        print(f"\nREGRESSION: {field} {kind} {delta_pct:+.1f}% "
              f"(limit {limit:g}%)")
    for field in removed:
        print(f"\nMISSING FIELD: {field} was in the baseline but is "
              "not emitted by the current bench — the perf signal for "
              "that path would silently vanish")
    for section in broken:
        print(f"\nBIT-IDENTITY FAILURE: section '{section}' reports "
              "bit_identical: false")
    if not (regressions or removed or broken):
        print(f"\nperf gate passed (threshold -{max_regression_pct:.0f}%)")
    return 1 if (regressions or removed or broken) else 0


def self_test():
    base = {
        "quantize_adaptive": {"ref_wps": 1000.0, "serial_wps": 5000.0,
                              "bit_identical": True},
        "pe_column_batch": {"batched_wps": 9000.0, "bit_identical": True},
        "packed_stream": {"packed_wps": 8000.0,
                          "packed_vs_pool_speedup": 2.4,
                          "packed_image_bytes": 4096.0,
                          "bit_identical": True},
        # SIMD host kernels: scalar and dispatched throughputs are
        # gated (always present); pinned per-tier numbers and the tier
        # strings are informational because the tier set depends on
        # the runner.
        "simd": {"tier": "avx512", "max_tier": "avx512",
                 "decode_scalar_wps": 1.1e8, "dot_scalar_wps": 9.0e7,
                 "mse_scalar_wps": 3.6e7,
                 "decode_avx2": 2.5e8, "dot_avx2": 1.6e8,
                 "mse_avx2": 5.0e7,
                 "decode_dispatch_wps": 3.0e8,
                 "dot_dispatch_wps": 1.8e8,
                 "mse_dispatch_wps": 5.2e7,
                 "bit_identical": True},
        "fig07_measured": {"bitmod_ll_speedup": 2.5},
        "fig08_measured": {"bitmod_ll_eff": 2.3},
        # Batched-decode sweep: per-batch speedups are gated ratios,
        # the crossover batch is informational, and bit_identical
        # carries the weight-amortization identity.
        "batch_speedup": {"ly_b64_speedup": 3.5,
                          "ll_crossover_batch": 90.0,
                          "bit_identical": True},
        # Fault-resilience families: coverage is strict, overhead is
        # footprint-like.
        "crc_granularity": {"row_coverage": 1.0,
                            "b64_coverage": 0.999},
        "protection_overhead": {"crc_row_overhead": 0.0015,
                                "secded_row_overhead": 0.127},
        # Serving families: latencies are inverse-throughput, the
        # sustainable rate is throughput-like; SLO budgets (no _ms
        # suffix) and determinism ride along.
        "serving_bitmod_fp4_fcfs": {"ttft_p99_ms": 120.0,
                                    "tpot_p99_ms": 4.0,
                                    "max_sustainable_rate": 24.0,
                                    "slo_ttft_budget": 600.0},
        "serving_determinism": {"bit_identical": True},
        # Sharding families: the TP decode speedups and the scaling
        # efficiency are gated ratios; the interconnect stall share is
        # informational; bit_identical carries the TP=1 identity.
        "sharding_speedup": {"tp4_decode_speedup": 2.8,
                             "tp_scaling_efficiency": 0.7,
                             "bit_identical": True},
        "planner_tp4_fcfs": {"fleet_max_sustainable_rate": 20.0,
                             "interconnect_stall_share": 0.02,
                             "load90_ttft_p99_ms": 60.0},
        # Memory-controller compression families: stream ratios are
        # gated higher-better (a drop means more bytes on the bus for
        # the same stream), the composed protection overhead is
        # footprint-like, and bit_identical carries the
        # compression-off identity.
        "weight_streams": {"fp4_ratio": 1.2, "int4_ratio": 1.5},
        "composition": {"lz4_crc_overhead": 0.07},
        "end_to_end": {"serving_tpot_ms": 600.0,
                       "bit_identical": True},
    }

    def variant(factor, identical=True):
        doc = json.loads(json.dumps(base))
        doc["pe_column_batch"]["batched_wps"] *= factor
        doc["pe_column_batch"]["bit_identical"] = identical
        return doc

    def footprint(factor):
        doc = json.loads(json.dumps(base))
        doc["packed_stream"]["packed_image_bytes"] *= factor
        return doc

    def ratio(factor, key="fig07_measured", field="bitmod_ll_speedup"):
        doc = json.loads(json.dumps(base))
        doc[key][field] *= factor
        return doc

    dropped = json.loads(json.dumps(base))
    del dropped["pe_column_batch"]

    dropped_bytes = json.loads(json.dumps(base))
    del dropped_bytes["packed_stream"]["packed_image_bytes"]

    dropped_ratio = json.loads(json.dumps(base))
    del dropped_ratio["fig08_measured"]

    amortization_broken = json.loads(json.dumps(base))
    amortization_broken["batch_speedup"]["bit_identical"] = False

    serving_nondeterministic = json.loads(json.dumps(base))
    serving_nondeterministic["serving_determinism"][
        "bit_identical"] = False

    simd_tier_mismatch = json.loads(json.dumps(base))
    simd_tier_mismatch["simd"]["bit_identical"] = False

    dropped_ratio_field = json.loads(json.dumps(base))
    del dropped_ratio_field["weight_streams"]["int4_ratio"]

    compression_identity_broken = json.loads(json.dumps(base))
    compression_identity_broken["end_to_end"]["bit_identical"] = False

    checks = [
        ("identical run passes", run_gate(base, base, 10) == 0),
        ("+30% passes", run_gate(base, variant(1.3), 10) == 0),
        ("-5% within threshold passes", run_gate(base, variant(0.95), 10) == 0),
        ("-20% regression fails", run_gate(base, variant(0.8), 10) == 1),
        ("missing baseline passes", run_gate(None, variant(0.5), 10) == 0),
        ("bit-identity false fails", run_gate(base, variant(1.0, False), 10) == 1),
        ("dropped field fails", run_gate(base, dropped, 10) == 1),
        ("new field passes", run_gate(dropped, base, 10) == 0),
        ("footprint -20% passes", run_gate(base, footprint(0.8), 10) == 0),
        ("footprint +5% within threshold passes",
         run_gate(base, footprint(1.05), 10) == 0),
        ("footprint +30% fails", run_gate(base, footprint(1.3), 10) == 1),
        ("dropped footprint field fails",
         run_gate(base, dropped_bytes, 10) == 1),
        ("measured speedup -20% fails",
         run_gate(base, ratio(0.8), 10) == 1),
        ("measured speedup -5% within threshold passes",
         run_gate(base, ratio(0.95), 10) == 0),
        ("measured speedup +30% passes",
         run_gate(base, ratio(1.3), 10) == 0),
        ("measured energy eff -20% fails",
         run_gate(base, ratio(0.8, "fig08_measured", "bitmod_ll_eff"),
                  10) == 1),
        ("dropped measured section fails",
         run_gate(base, dropped_ratio, 10) == 1),
        ("batch-sweep speedup -20% fails",
         run_gate(base, ratio(0.8, "batch_speedup", "ly_b64_speedup"),
                  10) == 1),
        ("crossover batch is informational, not gated",
         run_gate(base,
                  ratio(0.5, "batch_speedup", "ll_crossover_batch"),
                  10) == 0),
        ("broken weight amortization fails",
         run_gate(base, amortization_broken, 10) == 1),
        ("coverage -5% fails even within threshold",
         run_gate(base, ratio(0.95, "crc_granularity",
                              "row_coverage"), 10) == 1),
        ("coverage tiny jitter passes",
         run_gate(base, ratio(0.9999, "crc_granularity",
                              "b64_coverage"), 10) == 0),
        ("coverage rise passes",
         run_gate(base, ratio(1.001, "crc_granularity",
                              "b64_coverage"), 10) == 0),
        ("coverage collapse to zero fails",
         run_gate(base, ratio(0.0, "crc_granularity",
                              "row_coverage"), 10) == 1),
        ("protection overhead +30% fails",
         run_gate(base, ratio(1.3, "protection_overhead",
                              "secded_row_overhead"), 10) == 1),
        ("protection overhead +5% within threshold passes",
         run_gate(base, ratio(1.05, "protection_overhead",
                              "secded_row_overhead"), 10) == 0),
        ("protection overhead shrinking passes",
         run_gate(base, ratio(0.5, "protection_overhead",
                              "crc_row_overhead"), 10) == 0),
        ("p99 latency +30% fails",
         run_gate(base, ratio(1.3, "serving_bitmod_fp4_fcfs",
                              "ttft_p99_ms"), 10) == 1),
        ("p99 latency +5% within threshold passes",
         run_gate(base, ratio(1.05, "serving_bitmod_fp4_fcfs",
                              "ttft_p99_ms"), 10) == 0),
        ("p99 latency improving passes",
         run_gate(base, ratio(0.5, "serving_bitmod_fp4_fcfs",
                              "tpot_p99_ms"), 10) == 0),
        ("sustainable rate -20% fails",
         run_gate(base, ratio(0.8, "serving_bitmod_fp4_fcfs",
                              "max_sustainable_rate"), 10) == 1),
        ("sustainable rate +30% passes",
         run_gate(base, ratio(1.3, "serving_bitmod_fp4_fcfs",
                              "max_sustainable_rate"), 10) == 0),
        ("SLO budget is informational, not gated",
         run_gate(base, ratio(2.0, "serving_bitmod_fp4_fcfs",
                              "slo_ttft_budget"), 10) == 0),
        ("serving determinism failure fails",
         run_gate(base, serving_nondeterministic, 10) == 1),
        ("simd dispatched throughput -20% fails",
         run_gate(base, ratio(0.8, "simd", "dot_dispatch_wps"),
                  10) == 1),
        ("simd scalar throughput -20% fails",
         run_gate(base, ratio(0.8, "simd", "mse_scalar_wps"),
                  10) == 1),
        ("simd per-tier numbers are informational, not gated",
         run_gate(base, ratio(0.5, "simd", "decode_avx2"), 10) == 0),
        ("simd tier-identity failure fails",
         run_gate(base, simd_tier_mismatch, 10) == 1),
        ("packed-vs-pool speedup -20% fails",
         run_gate(base, ratio(0.8, "packed_stream",
                              "packed_vs_pool_speedup"), 10) == 1),
        ("packed-vs-pool speedup +30% passes",
         run_gate(base, ratio(1.3, "packed_stream",
                              "packed_vs_pool_speedup"), 10) == 0),
        ("tp scaling efficiency -20% fails",
         run_gate(base, ratio(0.8, "sharding_speedup",
                              "tp_scaling_efficiency"), 10) == 1),
        ("tp scaling efficiency +30% passes",
         run_gate(base, ratio(1.3, "sharding_speedup",
                              "tp_scaling_efficiency"), 10) == 0),
        ("tp decode speedup -20% fails",
         run_gate(base, ratio(0.8, "sharding_speedup",
                              "tp4_decode_speedup"), 10) == 1),
        ("fleet sustainable rate -20% fails",
         run_gate(base, ratio(0.8, "planner_tp4_fcfs",
                              "fleet_max_sustainable_rate"), 10) == 1),
        ("interconnect stall share is informational, not gated",
         run_gate(base, ratio(3.0, "planner_tp4_fcfs",
                              "interconnect_stall_share"), 10) == 0),
        ("planner latency +30% fails",
         run_gate(base, ratio(1.3, "planner_tp4_fcfs",
                              "load90_ttft_p99_ms"), 10) == 1),
        ("compression ratio -20% fails",
         run_gate(base, ratio(0.8, "weight_streams", "fp4_ratio"),
                  10) == 1),
        ("compression ratio -5% within threshold passes",
         run_gate(base, ratio(0.95, "weight_streams", "fp4_ratio"),
                  10) == 0),
        ("compression ratio +30% passes",
         run_gate(base, ratio(1.3, "weight_streams", "int4_ratio"),
                  10) == 0),
        ("dropped compression ratio field fails",
         run_gate(base, dropped_ratio_field, 10) == 1),
        ("composed compression overhead +30% fails",
         run_gate(base, ratio(1.3, "composition",
                              "lz4_crc_overhead"), 10) == 1),
        ("compression-off identity failure fails",
         run_gate(base, compression_identity_broken, 10) == 1),
    ]
    print("\n--- self-test results ---")
    failed = [name for name, ok in checks if not ok]
    for name, ok in checks:
        print(f"{'PASS' if ok else 'FAIL'}: {name}")
    if failed:
        sys.exit(1)
    print("self-test OK")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--prev", help="previous run's BENCH_*.json")
    ap.add_argument("--curr", help="current run's BENCH_*.json")
    ap.add_argument("--max-regression", type=float, default=10.0,
                    metavar="PCT",
                    help="allowed regression in percent: a *_wps / "
                         "*_speedup / *_eff drop or a *_bytes growth")
    ap.add_argument("--self-test", action="store_true",
                    help="exercise the gate logic on synthetic data")
    args = ap.parse_args()

    if args.self_test:
        self_test()
        return

    if not args.curr:
        ap.error("--curr is required (or use --self-test)")
    with open(args.curr) as f:
        curr = json.load(f)

    prev = None
    if args.prev:
        try:
            with open(args.prev) as f:
                prev = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"note: previous artifact unreadable ({e}); "
                  "treating as first run")

    sys.exit(run_gate(prev, curr, args.max_regression))


if __name__ == "__main__":
    main()
